(* Unit-capacity min-cost max-flow specialised for the escape network.

   The escape graph (Escape.build_network) is special three ways, and this
   solver exploits all of them:

   - every arc has capacity 1 and cost 0 or 1, so arc state packs into
     bytes: residual capacity is one byte, cost is stored as [cost + 1]
     (reverse arcs carry [-cost], so stored values span 0..2);

   - the arc set never changes between the feasibility probe and the
     routing solve, so the adjacency is CSR — [off.(v) .. off.(v+1) - 1]
     are v's arcs in emission order — built exactly once by running the
     caller's [emit_arcs] twice (count pass, then fill pass), and [reset]
     restores initial capacities for a second solve on the same structure;

   - successive-shortest-path rounds need only the distance to the sink,
     so each round runs 0-1-BFS (while Johnson potentials are all zero)
     or binary-heap Dijkstra (after the first potential update) over
     reduced costs, stops the moment the sink is settled, and carries the
     potentials to the next round — no Bellman-Ford, no whole-graph
     relaxation, no per-round allocation: dist/parent/closed state and
     both queues live in a generation-stamped Pacor_route.Workspace.

   Determinism contract: arcs keep their emission order, ties in the heap
   break on Pqueue's fixed order, and [decompose_paths] always follows the
   lowest-index forward arc still carrying flow — so two runs over the
   same network yield identical paths, independent of solver internals. *)

module W = Pacor_route.Workspace
module Stats = Pacor_route.Search_stats

type t = {
  n : int;
  source : int;
  sink : int;
  m : int;                  (* total directed arcs, forward + reverse *)
  off : int array;          (* CSR row offsets, length n + 1 *)
  arc_dst : int array;
  twin : int array;         (* paired residual arc *)
  costb : Bytes.t;          (* arc cost + 1, so reverse costs fit a byte *)
  fwdb : Bytes.t;           (* 1 iff forward arc (initial residual cap 1) *)
  capb : Bytes.t;           (* current residual capacity, 0 or 1 *)
  pot : int array;          (* Johnson potentials, persistent across rounds *)
  mutable pot_zero : bool;  (* all potentials still zero => 0-1-BFS applies *)
  mutable flow : int;
  mutable cost : int;
  mutable rounds : int;     (* augmentation searches run (incl. the last,
                               empty one) *)
  mutable solved : bool;
}

type outcome = { flow : int; cost : int; rounds : int }

let build ~n ~source ~sink ~emit_arcs =
  if n <= 0 then invalid_arg "Mcmf_grid.build: need at least one node";
  if source < 0 || source >= n || sink < 0 || sink >= n || source = sink then
    invalid_arg "Mcmf_grid.build: bad source/sink";
  (* Pass 1: arc counts per node (each forward arc also has a reverse). *)
  let deg = Array.make n 0 in
  let fwd_count = ref 0 in
  emit_arcs (fun ~src ~dst ~cost ->
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Mcmf_grid.build: bad node";
    if cost < 0 || cost > 1 then
      invalid_arg "Mcmf_grid.build: cost must be 0 or 1";
    incr fwd_count;
    deg.(src) <- deg.(src) + 1;
    deg.(dst) <- deg.(dst) + 1);
  let m = 2 * !fwd_count in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  (* Pass 2: fill. [deg] becomes the per-node write cursor. *)
  let cursor = deg in
  Array.blit off 0 cursor 0 n;
  let cap = max 1 m in
  let arc_dst = Array.make cap (-1) in
  let twin = Array.make cap (-1) in
  let costb = Bytes.make cap '\001' in
  let fwdb = Bytes.make cap '\000' in
  let nondet () = invalid_arg "Mcmf_grid.build: emit_arcs is not deterministic" in
  emit_arcs (fun ~src ~dst ~cost ->
    if src < 0 || src >= n || dst < 0 || dst >= n || cost < 0 || cost > 1 then nondet ();
    let a = cursor.(src) in
    if a >= off.(src + 1) then nondet ();
    cursor.(src) <- a + 1;
    let b = cursor.(dst) in
    if b >= off.(dst + 1) then nondet ();
    cursor.(dst) <- b + 1;
    arc_dst.(a) <- dst;
    twin.(a) <- b;
    Bytes.unsafe_set costb a (Char.unsafe_chr (cost + 1));
    Bytes.unsafe_set fwdb a '\001';
    arc_dst.(b) <- src;
    twin.(b) <- a;
    Bytes.unsafe_set costb b (Char.unsafe_chr (1 - cost)));
  for v = 0 to n - 1 do
    if cursor.(v) <> off.(v + 1) then nondet ()
  done;
  { n; source; sink; m; off; arc_dst; twin; costb; fwdb;
    capb = Bytes.copy fwdb;
    pot = Array.make n 0; pot_zero = true;
    flow = 0; cost = 0; rounds = 0; solved = false }

let node_count t = t.n
let arc_count t = t.m

let reset t =
  Bytes.blit t.fwdb 0 t.capb 0 (Bytes.length t.fwdb);
  Array.fill t.pot 0 t.n 0;
  t.pot_zero <- true;
  t.flow <- 0;
  t.cost <- 0;
  t.rounds <- 0;
  t.solved <- false

let[@inline] has_cap t a = Bytes.unsafe_get t.capb a = '\001'
let[@inline] arc_cost t a = Char.code (Bytes.unsafe_get t.costb a) - 1

(* One 0-1-BFS round over raw costs (valid only while every potential is
   zero, when reduced cost = cost). [costless] treats every arc as free —
   a plain BFS for the max-flow-only probe. Returns the sink's (reduced)
   distance, or -1 when unreachable / budget exhausted. *)
let round_01 t ws ~costless =
  let stats = W.stats ws in
  W.set_dist ws t.source 0;
  W.deque_push_back ws t.source;
  let dsink = ref (-1) in
  let running = ref true in
  while !running do
    let u = W.deque_pop_front ws in
    if u < 0 then running := false
    else if not (W.closed ws u) then begin
      W.close ws u;
      if u = t.sink then begin
        dsink := W.dist ws u;
        running := false
      end
      else begin
        let du = W.dist ws u in
        let stop = t.off.(u + 1) in
        for a = t.off.(u) to stop - 1 do
          if has_cap t a then begin
            Stats.touched stats;
            let v = t.arc_dst.(a) in
            let c = if costless then 0 else arc_cost t a in
            let nd = du + c in
            if nd < W.dist ws v then begin
              Stats.relaxed stats;
              W.set_dist ws v nd;
              W.set_parent ws v a;
              if (not costless) && c = 0 then W.deque_push_front ws v
              else W.deque_push_back ws v
            end
          end
        done
      end
    end
  done;
  !dsink

(* One Dijkstra round over reduced costs, early exit at the sink. *)
let round_dijkstra t ws =
  let stats = W.stats ws in
  W.set_dist ws t.source 0;
  W.push ws ~prio:0 t.source;
  let dsink = ref (-1) in
  let running = ref true in
  while !running do
    let u = W.pop_cell ws in
    if u < 0 then running := false
    else if not (W.closed ws u) then begin
      W.close ws u;
      if u = t.sink then begin
        dsink := W.dist ws u;
        running := false
      end
      else begin
        let du = W.dist ws u in
        let pu = t.pot.(u) in
        let stop = t.off.(u + 1) in
        for a = t.off.(u) to stop - 1 do
          if has_cap t a then begin
            Stats.touched stats;
            let v = t.arc_dst.(a) in
            let nd = du + arc_cost t a + pu - t.pot.(v) in
            if nd < W.dist ws v then begin
              Stats.relaxed stats;
              W.set_dist ws v nd;
              W.set_parent ws v a;
              W.push ws ~prio:nd v
            end
          end
        done
      end
    end
  done;
  !dsink

(* Flip the unit of flow along the parent-arc chain sink -> source. *)
let augment t ws =
  let v = ref t.sink in
  while !v <> t.source do
    let a = W.parent ws !v in
    Bytes.unsafe_set t.capb a '\000';
    let b = t.twin.(a) in
    Bytes.unsafe_set t.capb b '\001';
    v := t.arc_dst.(b)
  done;
  t.flow <- t.flow + 1

(* After an early-exit round with sink distance [d], every node settles at
   pot(v) += min(dist(v), d): settled nodes have their exact distance,
   unsettled/unreached nodes' true distance is >= d, and the clamp keeps
   all residual reduced costs non-negative for the next round. *)
let update_potentials t ws d =
  if d > 0 then begin
    for v = 0 to t.n - 1 do
      let dv = W.dist ws v in
      t.pot.(v) <- t.pot.(v) + (if dv > d then d else dv)
    done;
    t.pot_zero <- false
  end

let outcome (t : t) : outcome = { flow = t.flow; cost = t.cost; rounds = t.rounds }

let solve ?(alive = fun () -> true) ?workspace ?stop_when_cost_reaches t =
  if t.solved then invalid_arg "Mcmf_grid.solve: already solved";
  t.solved <- true;
  let ws = match workspace with Some ws -> ws | None -> W.create () in
  let running = ref true in
  while !running && alive () do
    W.begin_search ws ~cells:t.n;
    t.rounds <- t.rounds + 1;
    let d = if t.pot_zero then round_01 t ws ~costless:false else round_dijkstra t ws in
    if d < 0 then running := false
    else begin
      (* pot(source) is always 0, so the true path cost is d + pot(sink). *)
      let path_cost = d + t.pot.(t.sink) in
      let over =
        match stop_when_cost_reaches with
        | Some threshold -> path_cost >= threshold
        | None -> false
      in
      if over then running := false
      else begin
        augment t ws;
        t.cost <- t.cost + path_cost;
        update_potentials t ws d
      end
    end
  done;
  outcome t

let max_flow ?(alive = fun () -> true) ?workspace t =
  if t.solved then invalid_arg "Mcmf_grid.max_flow: already solved";
  t.solved <- true;
  let ws = match workspace with Some ws -> ws | None -> W.create () in
  let running = ref true in
  while !running && alive () do
    W.begin_search ws ~cells:t.n;
    t.rounds <- t.rounds + 1;
    if round_01 t ws ~costless:true < 0 then running := false
    else augment t ws
  done;
  t.flow

(* Lowest-index forward arc out of [v] still carrying flow (forward arc
   with spent capacity), or -1. The "lowest CSR index" rule is the
   deterministic tie-break when several unit paths cross one node. *)
let flow_arc_from t v =
  let stop = t.off.(v + 1) in
  let found = ref (-1) in
  let a = ref t.off.(v) in
  while !found < 0 && !a < stop do
    if Bytes.unsafe_get t.fwdb !a = '\001' && Bytes.unsafe_get t.capb !a = '\000'
    then found := !a
    else incr a
  done;
  !found

let decompose_paths t =
  let paths = ref [] in
  let rec next_unit () =
    if flow_arc_from t t.source >= 0 then begin
      (* Walk one unit sink-ward, consuming its flow; iterative loop with
         an accumulator, so Chip1-length paths cannot overflow the stack. *)
      let acc = ref [] in
      let v = ref t.source in
      while !v <> t.sink do
        acc := !v :: !acc;
        let a = flow_arc_from t !v in
        if a < 0 then failwith "Mcmf_grid.decompose_paths: flow dead-ends";
        Bytes.unsafe_set t.capb a '\001';
        Bytes.unsafe_set t.capb t.twin.(a) '\000';
        v := t.arc_dst.(a)
      done;
      paths := List.rev (t.sink :: !acc) :: !paths;
      next_unit ()
    end
  in
  next_unit ();
  List.rev !paths
