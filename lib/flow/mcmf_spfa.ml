type t = {
  n : int;
  head : int array;
  mutable next_edge : int array;
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : int array;
  mutable edge_count : int;
  mutable solved : bool;
}

let create n =
  if n <= 0 then invalid_arg "Mcmf_spfa.create: need at least one node";
  {
    n;
    head = Array.make n (-1);
    next_edge = [||];
    dst = [||];
    cap = [||];
    cost = [||];
    edge_count = 0;
    solved = false;
  }

let grow t =
  let cur = Array.length t.dst in
  if t.edge_count + 2 > cur then begin
    let ncap = max 64 (2 * cur) in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cur;
      b
    in
    t.next_edge <- extend t.next_edge (-1);
    t.dst <- extend t.dst 0;
    t.cap <- extend t.cap 0;
    t.cost <- extend t.cost 0
  end

let push_edge t ~src ~dst ~cap ~cost =
  let i = t.edge_count in
  t.next_edge.(i) <- t.head.(src);
  t.head.(src) <- i;
  t.dst.(i) <- dst;
  t.cap.(i) <- cap;
  t.cost.(i) <- cost;
  t.edge_count <- i + 1

let add_edge t ~src ~dst ~cap ~cost =
  if cap < 0 then invalid_arg "Mcmf_spfa.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf_spfa.add_edge: bad node";
  if t.solved then invalid_arg "Mcmf_spfa.add_edge: network already solved";
  grow t;
  push_edge t ~src ~dst ~cap ~cost;
  push_edge t ~src:dst ~dst:src ~cap:0 ~cost:(-cost)

type outcome = { flow : int; cost : int }

let infinity_cost = max_int / 4

let solve ?(alive = fun () -> true) ?(flow_target = max_int) ?stop_when_cost_reaches t
    ~source ~sink =
  if t.solved then invalid_arg "Mcmf_spfa.solve: already solved";
  t.solved <- true;
  let dist = Array.make t.n infinity_cost in
  let in_queue = Array.make t.n false in
  let parent_edge = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0 in
  let continue = ref true in
  while !continue && !total_flow < flow_target && alive () do
    Array.fill dist 0 t.n infinity_cost;
    Array.fill parent_edge 0 t.n (-1);
    Array.fill in_queue 0 t.n false;
    dist.(source) <- 0;
    let queue = Queue.create () in
    Queue.push source queue;
    in_queue.(source) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      in_queue.(u) <- false;
      let e = ref t.head.(u) in
      while !e >= 0 do
        let i = !e in
        let v = t.dst.(i) in
        if t.cap.(i) > 0 && dist.(u) + t.cost.(i) < dist.(v) then begin
          dist.(v) <- dist.(u) + t.cost.(i);
          parent_edge.(v) <- i;
          if not in_queue.(v) then begin
            Queue.push v queue;
            in_queue.(v) <- true
          end
        end;
        e := t.next_edge.(i)
      done
    done;
    if dist.(sink) >= infinity_cost then continue := false
    else begin
      let over =
        match stop_when_cost_reaches with
        | Some threshold -> dist.(sink) >= threshold
        | None -> false
      in
      if over then continue := false
      else begin
        let rec bottleneck v acc =
          if v = source then acc
          else begin
            let i = parent_edge.(v) in
            bottleneck (t.dst.(i lxor 1)) (min acc t.cap.(i))
          end
        in
        let push = min (bottleneck sink max_int) (flow_target - !total_flow) in
        let rec apply v =
          if v <> source then begin
            let i = parent_edge.(v) in
            t.cap.(i) <- t.cap.(i) - push;
            t.cap.(i lxor 1) <- t.cap.(i lxor 1) + push;
            apply (t.dst.(i lxor 1))
          end
        in
        apply sink;
        total_flow := !total_flow + push;
        total_cost := !total_cost + (push * dist.(sink))
      end
    end
  done;
  { flow = !total_flow; cost = !total_cost }

(* Flow accessors and decomposition, mirroring [Mcmf] — the two solvers
   share the paired-edge representation (reverse of edge i is [i lxor 1],
   forward edges at even indices), so the escape stage can decode paths
   from either interchangeably. *)

let edge_flow t i = t.cap.(i lxor 1)

let flow_on t ~src ~dst =
  let total = ref 0 in
  let e = ref t.head.(src) in
  while !e >= 0 do
    let i = !e in
    if i land 1 = 0 && t.dst.(i) = dst then total := !total + edge_flow t i;
    e := t.next_edge.(i)
  done;
  !total

let decompose_paths t ~source ~sink =
  let paths = ref [] in
  (* Iterative walk, mirroring [Mcmf.decompose_paths]: Chip1-length escape
     paths are deep enough to threaten the stack under plain recursion. *)
  let walk start =
    let acc = ref [] in
    let v = ref start in
    while !v <> sink do
      let rec find e =
        if e < 0 then failwith "Mcmf_spfa.decompose_paths: flow dead-ends"
        else if e land 1 = 0 && edge_flow t e > 0 then e
        else find t.next_edge.(e)
      in
      let i = find t.head.(!v) in
      t.cap.(i lxor 1) <- t.cap.(i lxor 1) - 1;
      t.cap.(i) <- t.cap.(i) + 1;
      acc := !v :: !acc;
      v := t.dst.(i)
    done;
    List.rev (sink :: !acc)
  in
  let rec next_unit () =
    let remaining =
      let any = ref false in
      let e = ref t.head.(source) in
      while !e >= 0 do
        if !e land 1 = 0 && edge_flow t !e > 0 then any := true;
        e := t.next_edge.(!e)
      done;
      !any
    in
    if remaining then begin
      paths := walk source :: !paths;
      next_unit ()
    end
  in
  next_unit ();
  List.rev !paths
