(** Reference min-cost max-flow via SPFA (Bellman–Ford queue) augmentation.

    Slower than {!Mcmf}'s Dijkstra-with-potentials but simpler, and it
    accepts negative edge costs without any preprocessing. It exists as an
    independent implementation to cross-check {!Mcmf} in the property
    tests — two solvers agreeing on random networks is the strongest
    correctness evidence we can build offline. *)

type t

val create : int -> t
val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> unit

type outcome = {
  flow : int;
  cost : int;
}

val solve :
  ?alive:(unit -> bool) ->
  ?flow_target:int ->
  ?stop_when_cost_reaches:int ->
  t ->
  source:int ->
  sink:int ->
  outcome
(** Same contract as {!Mcmf.solve}, including the cooperative [alive]
    cancellation hook polled between augmentations. *)

val flow_on : t -> src:int -> dst:int -> int
(** After [solve]: total flow on forward edges [src -> dst]
    (same contract as {!Mcmf.flow_on}). *)

val decompose_paths : t -> source:int -> sink:int -> int list list
(** After [solve]: split the flow into unit source-to-sink node paths,
    consuming it (same contract as {!Mcmf.decompose_paths}) — this makes
    the two solvers interchangeable behind {!Escape.route}'s solver
    switch. *)
