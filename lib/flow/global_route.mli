(** Tile-level global assignment: the coarse stage of hierarchical routing.

    Plans each request's escape traffic over the {!Pacor_grid.Tile_graph}
    with the same CSR min-cost-flow solver the escape stage uses at cell
    level. A request is one unit of flow from its start tiles to any tile
    with spare pins; boundary crossings cost 1 and are capacity-limited by
    the boundary's free cell pairs (capped at 16 parallel crossings), so
    the optimum maximises the number of assigned requests, then minimises
    and load-balances crossings. The resulting per-request tile sequences
    become detailed-stage corridors — advisory, not binding: the detailed
    searchers fall back to the whole grid when a corridor starves them. *)

val max_parallel : int
(** Parallel crossing arcs per tile boundary (capacity cap). *)

val assign :
  ?alive:(unit -> bool) ->
  ?workspace:Pacor_route.Workspace.t ->
  Pacor_grid.Tile_graph.t ->
  pins_per_tile:int array ->
  start_tiles:int list list ->
  int list option array
(** [assign tg ~pins_per_tile ~start_tiles] returns, per request (input
    order), [Some corridor] — the tile sequence its flow takes, start tile
    through pin tile — or [None] when the global flow could not assign it
    (the caller widens to a geometric or whole-grid corridor).
    [pins_per_tile.(t)] is the number of free, unclaimed candidate pins in
    tile [t] (array length must be the tile count); [start_tiles] gives
    each request's candidate entry tiles (deduplicated internally).
    Deterministic for fixed inputs: arc emission order is fixed and the
    flow decomposition tie-breaks on CSR index. *)
