open Pacor_geom
open Pacor_grid

type request = {
  cluster_idx : int;
  start_cells : Point.t list;
}

type routed = {
  idx : int;
  start_cell : Point.t;
  pin : Point.t;
  path : Path.t;
}

type outcome = {
  routed : routed list;
  failed : int list;
  total_length : int;
}

(* Cell roles in the flow network, packed two bits per cell. Precedence
   (highest wins): blocked > pin > start > claimed > boundary > ordinary. *)
let role_excluded = 0  (* obstacle, non-pin boundary, foreign claim *)
let role_ordinary = 1  (* free interior transit cell *)
let role_pin = 2       (* candidate control pin: sink only *)
let role_start = 3     (* claimed cell usable as some cluster's source *)

(* Dense role layer indexed by [Routing_grid.index]: the
   O(log n)-per-probe [Point.Set.mem] lookups of the old builder become
   one two-bit read per cell and per neighbour. The overlay order below
   realises the precedence: later writes win, and the pin/start writes
   are guarded by [free_i] so a blocked cell stays excluded. The backing
   bytes come from the workspace scratch pool when one is supplied, so
   repeated escape solves on a warm workspace allocate nothing.

   [corridor] (the hierarchical engine's union-of-request-corridors mask)
   demotes ordinary transit cells outside the mask to excluded; starts and
   pins are exempt, mirroring the detailed searchers' source/target
   exemption. The predicate is consulted only on otherwise-usable interior
   cells, so the caller can count every [false] as a genuine clip. *)
let compute_roles ?workspace ?corridor ~grid ~claimed ~pins requests =
  let cells = Routing_grid.cells grid in
  let roles =
    match workspace with
    | Some ws ->
      Packed_roles.wrap ~len:cells
        (Pacor_route.Workspace.scratch_bytes ws ~len:(Packed_roles.bytes_needed cells))
    | None -> Packed_roles.create cells
  in
  Routing_grid.fill_interior_free_packed grid roles;
  (match corridor with
   | None -> ()
   | Some allow ->
     for i = 0 to cells - 1 do
       if Packed_roles.get roles i = role_ordinary && not (allow i) then
         Packed_roles.set roles i role_excluded
     done);
  Point.Set.iter
    (fun p ->
       if Routing_grid.in_bounds grid p then
         Packed_roles.set roles (Routing_grid.index grid p) role_excluded)
    claimed;
  List.iter
    (fun r ->
       List.iter
         (fun p ->
            if Routing_grid.in_bounds grid p then begin
              let i = Routing_grid.index grid p in
              if Routing_grid.free_i grid i then Packed_roles.set roles i role_start
            end)
         r.start_cells)
    requests;
  List.iter
    (fun p ->
       if Routing_grid.in_bounds grid p then begin
         let i = Routing_grid.index grid p in
         if Routing_grid.free_i grid i then Packed_roles.set roles i role_pin
       end)
    pins;
  roles

(* Shared network layout: node-split grid (cell i -> nodes 2i / 2i+1) plus
   one node per request and a super source/sink. [emit] is called once per
   arc with (src, dst, cost), in a deterministic order — row-major cells,
   neighbours in [Routing_grid.iter_neighbours4] order, then request arcs
   in input order — which both the two-pass CSR builder and the
   decomposition tie-break rely on. *)
let emit_network ~grid ~roles requests ~emit =
  let cells = Routing_grid.cells grid in
  let nreq = List.length requests in
  let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
  for i = 0 to cells - 1 do
    let role = Packed_roles.get roles i in
    if role <> role_excluded then begin
      let out_node = (2 * i) + 1 in
      if role = role_pin then emit (2 * i) sink 0
      else begin
        if role = role_ordinary then emit (2 * i) out_node 0;
        Routing_grid.iter_neighbours4 grid i (fun j ->
          let rj = Packed_roles.get roles j in
          if rj = role_ordinary || rj = role_pin then emit out_node (2 * j) 1)
      end
    end
  done;
  List.iteri
    (fun k r ->
       emit source ((2 * cells) + k) 0;
       List.iter
         (fun p -> emit ((2 * cells) + k) ((2 * Routing_grid.index grid p) + 1) 0)
         r.start_cells)
    requests

let build_grid_network ~grid ~roles requests =
  let cells = Routing_grid.cells grid in
  let nreq = List.length requests in
  let n = (2 * cells) + nreq + 2 in
  let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
  let net =
    Mcmf_grid.build ~n ~source ~sink
      ~emit_arcs:(fun f ->
        emit_network ~grid ~roles requests
          ~emit:(fun src dst cost -> f ~src ~dst ~cost))
  in
  (net, source, sink)

let validate ~grid ~pins requests =
  let bad_pin =
    List.find_opt
      (fun p -> (not (Routing_grid.on_boundary grid p)) || Routing_grid.blocked grid p)
      pins
  in
  match bad_pin with
  | Some p -> Error (Format.asprintf "pin %a is not a free boundary cell" Point.pp p)
  | None ->
    let bad_start =
      List.concat_map (fun r -> r.start_cells) requests
      |> List.find_opt (fun p -> (not (Routing_grid.in_bounds grid p)) || Routing_grid.blocked grid p)
    in
    (match bad_start with
     | Some p -> Error (Format.asprintf "start cell %a is blocked or out of bounds" Point.pp p)
     | None ->
       if List.exists (fun r -> r.start_cells = []) requests then
         Error "a request has no start cells"
       else begin
         (* Duplicate identifiers used to be dropped silently downstream
            (last [Hashtbl.replace] won); make the contract explicit. *)
         let seen = Hashtbl.create 16 in
         let dup =
           List.find_opt
             (fun r ->
                if Hashtbl.mem seen r.cluster_idx then true
                else begin
                  Hashtbl.add seen r.cluster_idx ();
                  false
                end)
             requests
         in
         match dup with
         | Some r ->
           Error (Printf.sprintf "duplicate cluster_idx %d in requests" r.cluster_idx)
         | None -> Ok ()
       end)

let feasibility_bound ?workspace ~grid ~claimed ~pins requests =
  match validate ~grid ~pins requests with
  | Error _ -> 0
  | Ok () ->
    let roles = compute_roles ?workspace ~grid ~claimed ~pins requests in
    let net, _source, _sink = build_grid_network ~grid ~roles requests in
    Mcmf_grid.max_flow ?workspace net

type solver =
  | Dijkstra
  | Spfa
  | Grid

(* One confined (or flat) min-cost-flow solve over one joint network, no
   escalation and no decomposition: the ladder in [route] composes these
   via [solve_once]. Inputs are assumed validated. *)
let solve_joint ~alive ?workspace ~solver ?corridor ~grid ~claimed ~pins requests =
    let cells = Routing_grid.cells grid in
    let nreq = List.length requests in
    let n = (2 * cells) + nreq + 2 in
    let beta = (4 * cells) + 16 in
    (* The paper's [-beta] reward per routed path is realised as a stopping
       threshold: augment while a path still costs less than beta, which is
       larger than any possible augmenting-path cost — so the flow first
       maximises the number of routed clusters, then total length. *)
    let roles = compute_roles ?workspace ?corridor ~grid ~claimed ~pins requests in
    let node_paths =
      match solver with
      | Grid ->
        let net, _source, _sink = build_grid_network ~grid ~roles requests in
        let (_ : Mcmf_grid.outcome) =
          Mcmf_grid.solve ~alive ?workspace ~stop_when_cost_reaches:beta net
        in
        Mcmf_grid.decompose_paths net
      | Dijkstra ->
        let net = Mcmf.create n in
        let emit src dst cost = Mcmf.add_edge net ~src ~dst ~cap:1 ~cost in
        emit_network ~grid ~roles requests ~emit;
        let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
        let _outcome = Mcmf.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink in
        Mcmf.decompose_paths net ~source ~sink
      | Spfa ->
        let net = Mcmf_spfa.create n in
        let emit src dst cost = Mcmf_spfa.add_edge net ~src ~dst ~cap:1 ~cost in
        emit_network ~grid ~roles requests ~emit;
        let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
        let _outcome =
          Mcmf_spfa.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink
        in
        Mcmf_spfa.decompose_paths net ~source ~sink
    in
    (* Map each unit path back to its request (second node is the cluster
       node) and to grid points (in/out pairs collapse). *)
    let request_arr = Array.of_list requests in
    let routed_tbl = Hashtbl.create 16 in
    List.iter
      (fun nodes ->
         match nodes with
         | _src :: cnode :: rest when cnode >= 2 * cells && cnode < (2 * cells) + nreq ->
           let req = request_arr.(cnode - (2 * cells)) in
           let points =
             List.filter_map
               (fun node ->
                  if node < 2 * cells then Some (Routing_grid.point_of_index grid (node / 2))
                  else None)
               rest
           in
           (* Drop the in/out duplicate of each transit cell; iterative
              accumulator so Chip1-length escapes cannot overflow the
              stack. *)
           let collapse pts =
             let rec go acc = function
               | a :: (b :: _ as tl) when Point.equal a b -> go acc tl
               | a :: tl -> go (a :: acc) tl
               | [] -> List.rev acc
             in
             go [] pts
           in
           let pts = collapse points in
           (match pts with
            | [] -> ()
            | first :: _ ->
              let path = Path.of_points pts in
              Hashtbl.replace routed_tbl req.cluster_idx
                { idx = req.cluster_idx; start_cell = first; pin = Path.target path; path })
         | _ -> ())
      node_paths;
    let routed =
      List.filter_map (fun r -> Hashtbl.find_opt routed_tbl r.cluster_idx) requests
    in
    let failed =
      List.filter_map
        (fun r ->
           if Hashtbl.mem routed_tbl r.cluster_idx then None else Some r.cluster_idx)
        requests
    in
    let total_length = List.fold_left (fun acc r -> acc + Path.length r.path) 0 routed in
    { routed; failed; total_length }

(* Independent escape subnetworks. Two requests whose reachable regions
   share no cell cannot exchange flow: the min-cost-flow over the joint
   network is exactly the union of the flows over the per-component
   subnetworks. [solve_once] finds the components (union-find over the
   post-corridor role graph, following exactly the arcs [emit_network]
   would emit), and when there are at least two it solves each
   subinstance separately — in parallel when a scheduler is supplied,
   sequentially otherwise, with identical results either way: requests
   and pins keep input order within their group, groups merge in
   first-request order, and each subsolve runs on a leased scratch
   workspace whose stats are absorbed in group order in both modes.

   The single-group case (the common one: chips have connected free
   space) runs the historical joint solve on the caller's workspace,
   byte-for-byte. Decomposition is disabled when the caller's workspace
   carries real budget limits: subsolves on leased workspaces would not
   charge the budget, and a budget trip depends on operation order. *)
let solve_once ~alive ?sched ?workspace ~solver ?corridor ~grid ~claimed ~pins
    requests =
  let joint () =
    solve_joint ~alive ?workspace ~solver ?corridor ~grid ~claimed ~pins
      requests
  in
  let budget_free =
    match workspace with
    | None -> true
    | Some ws ->
      Pacor_route.Budget.is_no_limits
        (Pacor_route.Budget.limits_of (Pacor_route.Workspace.budget ws))
  in
  let req_arr = Array.of_list requests in
  let nreq = Array.length req_arr in
  if (not budget_free) || nreq < 2 then joint ()
  else begin
    let cells = Routing_grid.cells grid in
    let roles = compute_roles ?workspace ?corridor ~grid ~claimed ~pins requests in
    let parent = Array.init cells (fun i -> i) in
    let find i =
      let r = ref i in
      while parent.(!r) <> !r do
        r := parent.(!r)
      done;
      let j = ref i in
      while parent.(!j) <> !r do
        let next = parent.(!j) in
        parent.(!j) <- !r;
        j := next
      done;
      !r
    in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    (* Mirror [emit_network]'s connectivity: cells with out-arcs (ordinary
       and start) link to enterable neighbours (ordinary and pin). Pins
       emit only into the sink, so they join a component but never bridge
       two. *)
    for i = 0 to cells - 1 do
      let role = Packed_roles.get roles i in
      if role = role_ordinary || role = role_start then
        Routing_grid.iter_neighbours4 grid i (fun j ->
          let rj = Packed_roles.get roles j in
          if rj = role_ordinary || rj = role_pin then union i j)
    done;
    (* A request's node fans out to all its live start cells, fusing their
       components; a request with no live start is dead and rides along
       with the first group, where the subsolve reports it failed exactly
       as the joint solve would. *)
    let live = Array.make nreq (-1) in
    Array.iteri
      (fun k (r : request) ->
        List.iter
          (fun p ->
            if Routing_grid.in_bounds grid p then begin
              let i = Routing_grid.index grid p in
              if Packed_roles.get roles i = role_start then
                if live.(k) < 0 then live.(k) <- i else union live.(k) i
            end)
          r.start_cells)
      req_arr;
    let gid_of_root = Hashtbl.create 16 in
    let ngroups = ref 0 in
    let gid = Array.make nreq 0 in
    Array.iteri
      (fun k root ->
        if root >= 0 then begin
          let r = find root in
          match Hashtbl.find_opt gid_of_root r with
          | Some g -> gid.(k) <- g
          | None ->
            Hashtbl.add gid_of_root r !ngroups;
            gid.(k) <- !ngroups;
            incr ngroups
        end)
      live;
    if !ngroups <= 1 then joint ()
    else begin
      let ng = !ngroups in
      let group_reqs = Array.make ng [] in
      for k = nreq - 1 downto 0 do
        group_reqs.(gid.(k)) <- req_arr.(k) :: group_reqs.(gid.(k))
      done;
      let group_pins = Array.make ng [] in
      List.iter
        (fun p ->
          if Routing_grid.in_bounds grid p then begin
            let i = Routing_grid.index grid p in
            if Packed_roles.get roles i = role_pin then
              match Hashtbl.find_opt gid_of_root (find i) with
              | Some g -> group_pins.(g) <- p :: group_pins.(g)
              | None -> ()
              (* A pin no live request can reach: it carries no flow in the
                 joint network either; dropping it changes nothing. *)
          end)
        (List.rev pins);
      let outcomes = Array.make ng None in
      let solve_group g =
        let lws = Pacor_route.Workspace_pool.acquire ~cells in
        let before = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats lws) in
        let out =
          solve_joint ~alive ~workspace:lws ~solver ?corridor ~grid ~claimed
            ~pins:group_pins.(g) group_reqs.(g)
        in
        let delta =
          Pacor_route.Search_stats.diff
            (Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats lws))
            before
        in
        Pacor_route.Workspace_pool.release lws;
        outcomes.(g) <- Some (out, delta)
      in
      (match sched with
       | Some sched -> Pacor_sched.Sched.parallel_for sched ~n:ng solve_group
       | None ->
         for g = 0 to ng - 1 do
           solve_group g
         done);
      let tbl = Hashtbl.create 16 in
      let total = ref 0 in
      Array.iter
        (fun o ->
          let out, delta = Option.get o in
          (match workspace with
           | Some ws ->
             Pacor_route.Search_stats.absorb (Pacor_route.Workspace.stats ws) delta
           | None -> ());
          List.iter (fun r -> Hashtbl.replace tbl r.idx r) out.routed;
          total := !total + out.total_length)
        outcomes;
      let routed =
        List.filter_map
          (fun (r : request) -> Hashtbl.find_opt tbl r.cluster_idx)
          requests
      in
      let failed =
        List.filter_map
          (fun (r : request) ->
            if Hashtbl.mem tbl r.cluster_idx then None else Some r.cluster_idx)
          requests
      in
      { routed; failed; total_length = !total }
    end
  end

(* A corridored solve that fails any request may be the corridor's fault —
   the flow network excluded transit cells a flat network keeps. [route]
   escalates through residual retries (failed requests re-solved with the
   already-routed escapes committed as claimed cells and their pins
   retired), noting each fallback on the workspace's corridor counters so
   the run no longer certifies as confinement-free.

   With [corridor_fallback] (the hierarchical engine's wider post-corridor):
   retry the failed requests inside the wider region, then retry any
   stragglers unconfined. Each retry costs [|failed|] augmentations on the
   residual; there is deliberately {e no} whole-instance flat re-solve —
   a request failing even the unconfined residual is almost always
   infeasible for flat too (the engine's race tier covers the remainder),
   and the full re-solve used to charge a whole flat solve per rip-up
   round whenever one genuinely infeasible request was present.

   Without [corridor_fallback] (bare-corridor callers): one unconfined
   residual retry, then the historical whole-instance flat re-solve, which
   keeps the strict guarantee that a corridored call never routes fewer
   requests than a flat one. *)
let route ?(alive = fun () -> true) ?sched ?workspace ?(solver = Grid) ?corridor
    ?corridor_fallback ~grid ~claimed ~pins requests =
  match validate ~grid ~pins requests with
  | Error _ as e -> e
  | Ok () ->
    let base =
      solve_once ~alive ?sched ?workspace ~solver ?corridor ~grid ~claimed
        ~pins requests
    in
    if corridor = None || base.failed = [] || not (alive ()) then Ok base
    else begin
      let note () =
        match workspace with
        | Some ws -> Pacor_route.Workspace.corridor_note_fallback ws
        | None -> ()
      in
      note ();
      (* Residual instance after committing [acc]'s escapes. *)
      let residual acc =
        let claimed' =
          List.fold_left
            (fun s r ->
              List.fold_left (fun s p -> Point.Set.add p s) s (Path.points r.path))
            claimed acc.routed
        in
        let pins' =
          List.filter
            (fun p -> not (List.exists (fun r -> Point.equal p r.pin) acc.routed))
            pins
        in
        let failed_reqs =
          List.filter (fun r -> List.mem r.cluster_idx acc.failed) requests
        in
        (claimed', pins', failed_reqs)
      in
      (* Combine, restoring input request order. *)
      let merge acc rest =
        let tbl = Hashtbl.create 16 in
        List.iter (fun r -> Hashtbl.replace tbl r.idx r) acc.routed;
        List.iter (fun r -> Hashtbl.replace tbl r.idx r) rest.routed;
        let routed =
          List.filter_map (fun r -> Hashtbl.find_opt tbl r.cluster_idx) requests
        in
        let failed =
          List.filter_map
            (fun r ->
              if Hashtbl.mem tbl r.cluster_idx then None else Some r.cluster_idx)
            requests
        in
        { routed; failed; total_length = acc.total_length + rest.total_length }
      in
      match corridor_fallback with
      | Some wide ->
        let claimed', pins', failed_reqs = residual base in
        let step1 =
          merge base
            (solve_once ~alive ?sched ?workspace ~solver ~corridor:wide ~grid
               ~claimed:claimed' ~pins:pins' failed_reqs)
        in
        if step1.failed = [] || not (alive ()) then Ok step1
        else begin
          note ();
          let claimed'', pins'', failed_reqs' = residual step1 in
          Ok
            (merge step1
               (solve_once ~alive ?sched ?workspace ~solver ~grid
                  ~claimed:claimed'' ~pins:pins'' failed_reqs'))
        end
      | None ->
        let claimed', pins', failed_reqs = residual base in
        let rest =
          solve_once ~alive ?sched ?workspace ~solver ~grid ~claimed:claimed'
            ~pins:pins' failed_reqs
        in
        if rest.failed = [] then Ok (merge base rest)
        else begin
          note ();
          Ok
            (solve_once ~alive ?sched ?workspace ~solver ~grid ~claimed ~pins
               requests)
        end
    end
