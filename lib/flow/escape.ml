open Pacor_geom
open Pacor_grid

type request = {
  cluster_idx : int;
  start_cells : Point.t list;
}

type routed = {
  idx : int;
  start_cell : Point.t;
  pin : Point.t;
  path : Path.t;
}

type outcome = {
  routed : routed list;
  failed : int list;
  total_length : int;
}

(* Cell roles in the flow network, packed one byte per cell. Precedence
   (highest wins): blocked > pin > start > claimed > boundary > ordinary. *)
let role_excluded = '\000'  (* obstacle, non-pin boundary, foreign claim *)
let role_ordinary = '\001'  (* free interior transit cell *)
let role_pin = '\002'       (* candidate control pin: sink only *)
let role_start = '\003'     (* claimed cell usable as some cluster's source *)

(* Dense role array indexed by [Routing_grid.index]: the
   O(log n)-per-probe [Point.Set.mem] lookups of the old builder become
   one byte read per cell and per neighbour. The overlay order below
   realises the precedence: later writes win, and the pin/start writes
   are guarded by [free_i] so a blocked cell stays excluded. *)
let compute_roles ~grid ~claimed ~pins requests =
  let roles = Bytes.create (Routing_grid.cells grid) in
  Routing_grid.fill_interior_free grid roles;
  Point.Set.iter
    (fun p ->
       if Routing_grid.in_bounds grid p then
         Bytes.set roles (Routing_grid.index grid p) role_excluded)
    claimed;
  List.iter
    (fun r ->
       List.iter
         (fun p ->
            if Routing_grid.in_bounds grid p then begin
              let i = Routing_grid.index grid p in
              if Routing_grid.free_i grid i then Bytes.set roles i role_start
            end)
         r.start_cells)
    requests;
  List.iter
    (fun p ->
       if Routing_grid.in_bounds grid p then begin
         let i = Routing_grid.index grid p in
         if Routing_grid.free_i grid i then Bytes.set roles i role_pin
       end)
    pins;
  roles

(* Shared network layout: node-split grid (cell i -> nodes 2i / 2i+1) plus
   one node per request and a super source/sink. [emit] is called once per
   arc with (src, dst, cost), in a deterministic order — row-major cells,
   neighbours in [Routing_grid.iter_neighbours4] order, then request arcs
   in input order — which both the two-pass CSR builder and the
   decomposition tie-break rely on. *)
let emit_network ~grid ~roles requests ~emit =
  let cells = Routing_grid.cells grid in
  let nreq = List.length requests in
  let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
  for i = 0 to cells - 1 do
    let role = Bytes.unsafe_get roles i in
    if role <> role_excluded then begin
      let out_node = (2 * i) + 1 in
      if role = role_pin then emit (2 * i) sink 0
      else begin
        if role = role_ordinary then emit (2 * i) out_node 0;
        Routing_grid.iter_neighbours4 grid i (fun j ->
          let rj = Bytes.unsafe_get roles j in
          if rj = role_ordinary || rj = role_pin then emit out_node (2 * j) 1)
      end
    end
  done;
  List.iteri
    (fun k r ->
       emit source ((2 * cells) + k) 0;
       List.iter
         (fun p -> emit ((2 * cells) + k) ((2 * Routing_grid.index grid p) + 1) 0)
         r.start_cells)
    requests

let build_grid_network ~grid ~roles requests =
  let cells = Routing_grid.cells grid in
  let nreq = List.length requests in
  let n = (2 * cells) + nreq + 2 in
  let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
  let net =
    Mcmf_grid.build ~n ~source ~sink
      ~emit_arcs:(fun f ->
        emit_network ~grid ~roles requests
          ~emit:(fun src dst cost -> f ~src ~dst ~cost))
  in
  (net, source, sink)

let validate ~grid ~pins requests =
  let bad_pin =
    List.find_opt
      (fun p -> (not (Routing_grid.on_boundary grid p)) || Routing_grid.blocked grid p)
      pins
  in
  match bad_pin with
  | Some p -> Error (Format.asprintf "pin %a is not a free boundary cell" Point.pp p)
  | None ->
    let bad_start =
      List.concat_map (fun r -> r.start_cells) requests
      |> List.find_opt (fun p -> (not (Routing_grid.in_bounds grid p)) || Routing_grid.blocked grid p)
    in
    (match bad_start with
     | Some p -> Error (Format.asprintf "start cell %a is blocked or out of bounds" Point.pp p)
     | None ->
       if List.exists (fun r -> r.start_cells = []) requests then
         Error "a request has no start cells"
       else begin
         (* Duplicate identifiers used to be dropped silently downstream
            (last [Hashtbl.replace] won); make the contract explicit. *)
         let seen = Hashtbl.create 16 in
         let dup =
           List.find_opt
             (fun r ->
                if Hashtbl.mem seen r.cluster_idx then true
                else begin
                  Hashtbl.add seen r.cluster_idx ();
                  false
                end)
             requests
         in
         match dup with
         | Some r ->
           Error (Printf.sprintf "duplicate cluster_idx %d in requests" r.cluster_idx)
         | None -> Ok ()
       end)

let feasibility_bound ?workspace ~grid ~claimed ~pins requests =
  match validate ~grid ~pins requests with
  | Error _ -> 0
  | Ok () ->
    let roles = compute_roles ~grid ~claimed ~pins requests in
    let net, _source, _sink = build_grid_network ~grid ~roles requests in
    Mcmf_grid.max_flow ?workspace net

type solver =
  | Dijkstra
  | Spfa
  | Grid

let route ?(alive = fun () -> true) ?workspace ?(solver = Grid) ~grid ~claimed ~pins
    requests =
  match validate ~grid ~pins requests with
  | Error _ as e -> e
  | Ok () ->
    let cells = Routing_grid.cells grid in
    let nreq = List.length requests in
    let n = (2 * cells) + nreq + 2 in
    let beta = (4 * cells) + 16 in
    (* The paper's [-beta] reward per routed path is realised as a stopping
       threshold: augment while a path still costs less than beta, which is
       larger than any possible augmenting-path cost — so the flow first
       maximises the number of routed clusters, then total length. *)
    let roles = compute_roles ~grid ~claimed ~pins requests in
    let node_paths =
      match solver with
      | Grid ->
        let net, _source, _sink = build_grid_network ~grid ~roles requests in
        let (_ : Mcmf_grid.outcome) =
          Mcmf_grid.solve ~alive ?workspace ~stop_when_cost_reaches:beta net
        in
        Mcmf_grid.decompose_paths net
      | Dijkstra ->
        let net = Mcmf.create n in
        let emit src dst cost = Mcmf.add_edge net ~src ~dst ~cap:1 ~cost in
        emit_network ~grid ~roles requests ~emit;
        let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
        let _outcome = Mcmf.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink in
        Mcmf.decompose_paths net ~source ~sink
      | Spfa ->
        let net = Mcmf_spfa.create n in
        let emit src dst cost = Mcmf_spfa.add_edge net ~src ~dst ~cap:1 ~cost in
        emit_network ~grid ~roles requests ~emit;
        let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
        let _outcome =
          Mcmf_spfa.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink
        in
        Mcmf_spfa.decompose_paths net ~source ~sink
    in
    (* Map each unit path back to its request (second node is the cluster
       node) and to grid points (in/out pairs collapse). *)
    let request_arr = Array.of_list requests in
    let routed_tbl = Hashtbl.create 16 in
    List.iter
      (fun nodes ->
         match nodes with
         | _src :: cnode :: rest when cnode >= 2 * cells && cnode < (2 * cells) + nreq ->
           let req = request_arr.(cnode - (2 * cells)) in
           let points =
             List.filter_map
               (fun node ->
                  if node < 2 * cells then Some (Routing_grid.point_of_index grid (node / 2))
                  else None)
               rest
           in
           (* Drop the in/out duplicate of each transit cell; iterative
              accumulator so Chip1-length escapes cannot overflow the
              stack. *)
           let collapse pts =
             let rec go acc = function
               | a :: (b :: _ as tl) when Point.equal a b -> go acc tl
               | a :: tl -> go (a :: acc) tl
               | [] -> List.rev acc
             in
             go [] pts
           in
           let pts = collapse points in
           (match pts with
            | [] -> ()
            | first :: _ ->
              let path = Path.of_points pts in
              Hashtbl.replace routed_tbl req.cluster_idx
                { idx = req.cluster_idx; start_cell = first; pin = Path.target path; path })
         | _ -> ())
      node_paths;
    let routed =
      List.filter_map (fun r -> Hashtbl.find_opt routed_tbl r.cluster_idx) requests
    in
    let failed =
      List.filter_map
        (fun r ->
           if Hashtbl.mem routed_tbl r.cluster_idx then None else Some r.cluster_idx)
        requests
    in
    let total_length = List.fold_left (fun acc r -> acc + Path.length r.path) 0 routed in
    Ok { routed; failed; total_length }
