open Pacor_geom
open Pacor_grid

type request = {
  cluster_idx : int;
  start_cells : Point.t list;
}

type routed = {
  idx : int;
  start_cell : Point.t;
  pin : Point.t;
  path : Path.t;
}

type outcome = {
  routed : routed list;
  failed : int list;
  total_length : int;
}

(* Cell roles in the flow network. *)
type role =
  | Excluded          (* obstacle, non-pin boundary, or foreign claimed cell *)
  | Ordinary          (* free interior transit cell *)
  | Pin               (* candidate control pin: sink only *)
  | Start             (* claimed cell usable as some cluster's source *)

(* Shared network layout: node-split grid plus one node per request and a
   super source/sink. [emit] is called once per arc with (src, dst, cost). *)
let build_network ~grid ~claimed ~pins requests ~emit =
  let w = Routing_grid.width grid and h = Routing_grid.height grid in
  let cells = w * h in
  let pin_set = Point.Set.of_list pins in
  let start_set =
    List.fold_left
      (fun acc r -> List.fold_left (fun s p -> Point.Set.add p s) acc r.start_cells)
      Point.Set.empty requests
  in
  let role_of p =
    if Routing_grid.blocked grid p then Excluded
    else if Point.Set.mem p pin_set then Pin
    else if Point.Set.mem p start_set then Start
    else if Point.Set.mem p claimed then Excluded
    else if Routing_grid.on_boundary grid p then Excluded
    else Ordinary
  in
  let nreq = List.length requests in
  let n = (2 * cells) + nreq + 2 in
  let source = (2 * cells) + nreq and sink = (2 * cells) + nreq + 1 in
  let cluster_node i = (2 * cells) + i in
  let in_node p = 2 * Routing_grid.index grid p in
  let out_node p = (2 * Routing_grid.index grid p) + 1 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let p = Point.make x y in
      match role_of p with
      | Excluded -> ()
      | Pin -> emit (in_node p) sink 0
      | Start ->
        List.iter
          (fun q ->
             if Routing_grid.in_bounds grid q then
               match role_of q with
               | Ordinary | Pin -> emit (out_node p) (in_node q) 1
               | Excluded | Start -> ())
          (Point.neighbours4 p)
      | Ordinary ->
        emit (in_node p) (out_node p) 0;
        List.iter
          (fun q ->
             if Routing_grid.in_bounds grid q then
               match role_of q with
               | Ordinary | Pin -> emit (out_node p) (in_node q) 1
               | Excluded | Start -> ())
          (Point.neighbours4 p)
    done
  done;
  List.iteri
    (fun i r ->
       emit source (cluster_node i) 0;
       List.iter (fun p -> emit (cluster_node i) (out_node p) 0) r.start_cells)
    requests;
  (n, source, sink, cells)

let validate ~grid ~pins requests =
  let bad_pin =
    List.find_opt
      (fun p -> (not (Routing_grid.on_boundary grid p)) || Routing_grid.blocked grid p)
      pins
  in
  match bad_pin with
  | Some p -> Error (Format.asprintf "pin %a is not a free boundary cell" Point.pp p)
  | None ->
    let bad_start =
      List.concat_map (fun r -> r.start_cells) requests
      |> List.find_opt (fun p -> (not (Routing_grid.in_bounds grid p)) || Routing_grid.blocked grid p)
    in
    (match bad_start with
     | Some p -> Error (Format.asprintf "start cell %a is blocked or out of bounds" Point.pp p)
     | None ->
       if List.exists (fun r -> r.start_cells = []) requests then
         Error "a request has no start cells"
       else Ok ())

let feasibility_bound ~grid ~claimed ~pins requests =
  match validate ~grid ~pins requests with
  | Error _ -> 0
  | Ok () ->
    let w = Routing_grid.width grid and h = Routing_grid.height grid in
    let cells = w * h in
    let n = (2 * cells) + List.length requests + 2 in
    let network = Maxflow.create n in
    let emit src dst _cost = Maxflow.add_edge network ~src ~dst ~cap:1 in
    let n_nodes, source, sink, _ = build_network ~grid ~claimed ~pins requests ~emit in
    assert (n_nodes = n);
    Maxflow.max_flow network ~source ~sink

type solver =
  | Dijkstra
  | Spfa

let route ?(alive = fun () -> true) ?(solver = Spfa) ~grid ~claimed ~pins requests =
  match validate ~grid ~pins requests with
  | Error _ as e -> e
  | Ok () ->
    let w = Routing_grid.width grid and h = Routing_grid.height grid in
    let cells = w * h in
    let nreq = List.length requests in
    let n = (2 * cells) + nreq + 2 in
    let beta = (4 * cells) + 16 in
    (* The paper's [-beta] reward per routed path is realised as a stopping
       threshold: augment while a path still costs less than beta, which is
       larger than any possible augmenting-path cost — so the flow first
       maximises the number of routed clusters, then total length. *)
    let node_paths =
      match solver with
      | Dijkstra ->
        let net = Mcmf.create n in
        let emit src dst cost = Mcmf.add_edge net ~src ~dst ~cap:1 ~cost in
        let n_nodes, source, sink, _ =
          build_network ~grid ~claimed ~pins requests ~emit
        in
        assert (n_nodes = n);
        let _outcome = Mcmf.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink in
        Mcmf.decompose_paths net ~source ~sink
      | Spfa ->
        let net = Mcmf_spfa.create n in
        let emit src dst cost = Mcmf_spfa.add_edge net ~src ~dst ~cap:1 ~cost in
        let n_nodes, source, sink, _ =
          build_network ~grid ~claimed ~pins requests ~emit
        in
        assert (n_nodes = n);
        let _outcome =
          Mcmf_spfa.solve ~alive ~stop_when_cost_reaches:beta net ~source ~sink
        in
        Mcmf_spfa.decompose_paths net ~source ~sink
    in
    (* Map each unit path back to its request (second node is the cluster
       node) and to grid points (in/out pairs collapse). *)
    let request_arr = Array.of_list requests in
    let routed_tbl = Hashtbl.create 16 in
    List.iter
      (fun nodes ->
         match nodes with
         | _src :: cnode :: rest when cnode >= 2 * cells && cnode < (2 * cells) + nreq ->
           let req = request_arr.(cnode - (2 * cells)) in
           let points =
             List.filter_map
               (fun node ->
                  if node < 2 * cells then Some (Routing_grid.point_of_index grid (node / 2))
                  else None)
               rest
           in
           let rec collapse = function
             | a :: b :: tl when Point.equal a b -> collapse (b :: tl)
             | a :: tl -> a :: collapse tl
             | [] -> []
           in
           let pts = collapse points in
           (match pts with
            | [] -> ()
            | first :: _ ->
              let path = Path.of_points pts in
              Hashtbl.replace routed_tbl req.cluster_idx
                { idx = req.cluster_idx; start_cell = first; pin = Path.target path; path })
         | _ -> ())
      node_paths;
    let routed =
      List.filter_map (fun r -> Hashtbl.find_opt routed_tbl r.cluster_idx) requests
    in
    let failed =
      List.filter_map
        (fun r ->
           if Hashtbl.mem routed_tbl r.cluster_idx then None else Some r.cluster_idx)
        requests
    in
    let total_length = List.fold_left (fun acc r -> acc + Path.length r.path) 0 routed in
    Ok { routed; failed; total_length }
