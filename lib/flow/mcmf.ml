(* Compact adjacency: edges stored in parallel growable arrays; [head] and
   [next] thread per-node edge lists; edge i and its reverse (i lxor 1) are
   created together. *)
type t = {
  n : int;
  mutable head : int array;            (* per node: first edge index or -1 *)
  mutable next_edge : int array;
  mutable dst : int array;
  mutable cap : int array;             (* residual capacity *)
  mutable cost : int array;
  mutable edge_count : int;
  mutable solved : bool;
}

let create n =
  if n <= 0 then invalid_arg "Mcmf.create: need at least one node";
  {
    n;
    head = Array.make n (-1);
    next_edge = [||];
    dst = [||];
    cap = [||];
    cost = [||];
    edge_count = 0;
    solved = false;
  }

let node_count t = t.n

let grow t =
  let cur = Array.length t.dst in
  if t.edge_count + 2 > cur then begin
    let ncap = max 64 (2 * cur) in
    let extend a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cur;
      b
    in
    t.next_edge <- extend t.next_edge (-1);
    t.dst <- extend t.dst 0;
    t.cap <- extend t.cap 0;
    t.cost <- extend t.cost 0
  end

let push_edge t ~src ~dst ~cap ~cost =
  let i = t.edge_count in
  t.next_edge.(i) <- t.head.(src);
  t.head.(src) <- i;
  t.dst.(i) <- dst;
  t.cap.(i) <- cap;
  t.cost.(i) <- cost;
  t.edge_count <- i + 1

let add_edge t ~src ~dst ~cap ~cost =
  if cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then invalid_arg "Mcmf.add_edge: bad node";
  if t.solved then invalid_arg "Mcmf.add_edge: network already solved";
  grow t;
  push_edge t ~src ~dst ~cap ~cost;
  push_edge t ~src:dst ~dst:src ~cap:0 ~cost:(-cost)

type outcome = { flow : int; cost : int }

let infinity_cost = max_int / 4

(* Bellman-Ford from [source] to establish potentials when negative edge
   costs exist. O(V * E) but run once. *)
let initial_potentials t ~source =
  let dist = Array.make t.n infinity_cost in
  dist.(source) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= t.n do
    changed := false;
    incr rounds;
    for src = 0 to t.n - 1 do
      if dist.(src) < infinity_cost then begin
        let e = ref t.head.(src) in
        while !e >= 0 do
          let i = !e in
          if t.cap.(i) > 0 && dist.(src) + t.cost.(i) < dist.(t.dst.(i)) then begin
            dist.(t.dst.(i)) <- dist.(src) + t.cost.(i);
            changed := true
          end;
          e := t.next_edge.(i)
        done
      end
    done
  done;
  if !changed then failwith "Mcmf: negative cycle in network";
  Array.map (fun d -> if d >= infinity_cost then 0 else d) dist

let solve ?(alive = fun () -> true) ?(flow_target = max_int)
    ?stop_when_cost_reaches t ~source ~sink =
  if t.solved then invalid_arg "Mcmf.solve: already solved";
  t.solved <- true;
  (* Bellman-Ford is only needed when negative costs exist. *)
  let has_negative =
    let rec scan i = i < t.edge_count && (t.cost.(i) < 0 && t.cap.(i) > 0 || scan (i + 1)) in
    scan 0
  in
  let pot = if has_negative then initial_potentials t ~source else Array.make t.n 0 in
  let dist = Array.make t.n infinity_cost in
  let parent_edge = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0 in
  let continue = ref true in
  while !continue && !total_flow < flow_target && alive () do
    (* Dijkstra on reduced costs. *)
    Array.fill dist 0 t.n infinity_cost;
    Array.fill parent_edge 0 t.n (-1);
    dist.(source) <- 0;
    let pq = Pacor_graphs.Pqueue.create () in
    Pacor_graphs.Pqueue.push pq ~prio:0 source;
    let rec drain () =
      match Pacor_graphs.Pqueue.pop pq with
      | None -> ()
      | Some (d, u) ->
        if d <= dist.(u) then begin
          let e = ref t.head.(u) in
          while !e >= 0 do
            let i = !e in
            let v = t.dst.(i) in
            if t.cap.(i) > 0 then begin
              let rc = t.cost.(i) + pot.(u) - pot.(v) in
              (* Reduced costs are non-negative for feasible potentials. *)
              if dist.(u) + rc < dist.(v) then begin
                dist.(v) <- dist.(u) + rc;
                parent_edge.(v) <- i;
                Pacor_graphs.Pqueue.push pq ~prio:dist.(v) v
              end
            end;
            e := t.next_edge.(i)
          done;
          drain ()
        end
        else drain ()
    in
    drain ();
    if dist.(sink) >= infinity_cost then continue := false
    else begin
      let path_cost = dist.(sink) + pot.(sink) - pot.(source) in
      let over_threshold =
        match stop_when_cost_reaches with
        | Some threshold -> path_cost >= threshold
        | None -> false
      in
      if over_threshold then continue := false
      else begin
        (* Bottleneck along the augmenting path. *)
        let rec bottleneck v acc =
          if v = source then acc
          else begin
            let i = parent_edge.(v) in
            let u = t.dst.(i lxor 1) in
            bottleneck u (min acc t.cap.(i))
          end
        in
        let push = min (bottleneck sink max_int) (flow_target - !total_flow) in
        let rec apply v =
          if v <> source then begin
            let i = parent_edge.(v) in
            t.cap.(i) <- t.cap.(i) - push;
            t.cap.(i lxor 1) <- t.cap.(i lxor 1) + push;
            apply (t.dst.(i lxor 1))
          end
        in
        apply sink;
        total_flow := !total_flow + push;
        total_cost := !total_cost + (push * path_cost);
        (* Update potentials for the next round. *)
        for v = 0 to t.n - 1 do
          if dist.(v) < infinity_cost then pot.(v) <- pot.(v) + dist.(v)
        done
      end
    end
  done;
  { flow = !total_flow; cost = !total_cost }

(* Flow on a forward edge = capacity moved to its reverse twin. Forward
   edges have even indices. *)
let edge_flow t i = t.cap.(i lxor 1)

let flow_on t ~src ~dst =
  let total = ref 0 in
  let e = ref t.head.(src) in
  while !e >= 0 do
    let i = !e in
    if i land 1 = 0 && t.dst.(i) = dst then total := !total + edge_flow t i;
    e := t.next_edge.(i)
  done;
  !total

let outgoing_flow t v =
  let acc = ref [] in
  let e = ref t.head.(v) in
  while !e >= 0 do
    let i = !e in
    if i land 1 = 0 && edge_flow t i > 0 then acc := (t.dst.(i), edge_flow t i) :: !acc;
    e := t.next_edge.(i)
  done;
  !acc

let decompose_paths t ~source ~sink =
  let paths = ref [] in
  (* Iterative walk with an explicit accumulator: escape paths reach tens
     of thousands of nodes at Chip1 scale, deep enough to threaten the
     stack if this recursed without tail calls. *)
  let walk start =
    let acc = ref [] in
    let v = ref start in
    while !v <> sink do
      (* Follow any forward edge with remaining flow, consuming one unit. *)
      let rec find e =
        if e < 0 then failwith "Mcmf.decompose_paths: flow dead-ends"
        else if e land 1 = 0 && edge_flow t e > 0 then e
        else find t.next_edge.(e)
      in
      let i = find t.head.(!v) in
      t.cap.(i lxor 1) <- t.cap.(i lxor 1) - 1;
      t.cap.(i) <- t.cap.(i) + 1;
      acc := !v :: !acc;
      v := t.dst.(i)
    done;
    List.rev (sink :: !acc)
  in
  let rec next_unit () =
    let remaining =
      let any = ref false in
      let e = ref t.head.(source) in
      while !e >= 0 do
        if !e land 1 = 0 && edge_flow t !e > 0 then any := true;
        e := t.next_edge.(!e)
      done;
      !any
    in
    if remaining then begin
      paths := walk source :: !paths;
      next_unit ()
    end
  in
  next_unit ();
  List.rev !paths
