open Pacor_geom
open Pacor_grid
open Pacor_valve

type t =
  | Stuck_valve of { valve : Valve.id; stuck_open : bool }
  | Blocked_cell of Point.t
  | Leaky_segment of { a : Point.t; b : Point.t }

(* Canonical endpoint order so [Leaky_segment {a; b}] and [{a = b; b = a}]
   denote the same physical segment. *)
let norm_segment a b = if Point.compare a b <= 0 then (a, b) else (b, a)

let equal f g =
  match (f, g) with
  | Stuck_valve a, Stuck_valve b -> a.valve = b.valve && a.stuck_open = b.stuck_open
  | Blocked_cell a, Blocked_cell b -> Point.equal a b
  | Leaky_segment s, Leaky_segment s' ->
    let a, b = norm_segment s.a s.b and a', b' = norm_segment s'.a s'.b in
    Point.equal a a' && Point.equal b b'
  | (Stuck_valve _ | Blocked_cell _ | Leaky_segment _), _ -> false

(* Two faults collide when they occupy the same physical site, regardless
   of kind details (a valve cannot be stuck open and stuck closed at once,
   a segment cannot leak twice). *)
let same_site f g =
  match (f, g) with
  | Stuck_valve a, Stuck_valve b -> a.valve = b.valve
  | Blocked_cell a, Blocked_cell b -> Point.equal a b
  | Leaky_segment s, Leaky_segment s' ->
    let a, b = norm_segment s.a s.b and a', b' = norm_segment s'.a s'.b in
    Point.equal a a' && Point.equal b b'
  | (Stuck_valve _ | Blocked_cell _ | Leaky_segment _), _ -> false

let pp ppf = function
  | Stuck_valve { valve; stuck_open } ->
    Format.fprintf ppf "valve %d stuck %s" valve (if stuck_open then "open" else "closed")
  | Blocked_cell p -> Format.fprintf ppf "blocked cell %a" Point.pp p
  | Leaky_segment { a; b } -> Format.fprintf ppf "leaky segment %a-%a" Point.pp a Point.pp b

let blocked_cells faults =
  let set =
    List.fold_left
      (fun acc -> function
         | Stuck_valve _ -> acc
         | Blocked_cell p -> Point.Set.add p acc
         | Leaky_segment { a; b } -> Point.Set.add a (Point.Set.add b acc))
      Point.Set.empty faults
  in
  Point.Set.elements set

let stuck_valves faults =
  List.sort_uniq Int.compare
    (List.filter_map
       (function Stuck_valve { valve; _ } -> Some valve | Blocked_cell _ | Leaky_segment _ -> None)
       faults)

let apply problem faults =
  Pacor.Problem.with_faults problem ~blocked:(blocked_cells faults)
    ~dead_valves:(stuck_valves faults)

(* Injection site pools, all derived deterministically from the solution:
   - valves: every valve of the problem, in declaration order;
   - cells: every cell of a routed channel (internal claims and escape
     paths) that is neither a valve cell nor a candidate pin, first-seen
     order over clusters;
   - segments: consecutive cell pairs of routed paths whose endpoints are
     both plain channel cells.
   Valve cells and pins are excluded so a blocked cell or leak never
   aliases a stuck valve or silently deletes pin capacity — those are
   separate fault kinds / separate experiments. *)
let site_pools (sol : Pacor.Solution.t) =
  let problem = sol.Pacor.Solution.problem in
  let valves = Array.of_list problem.Pacor.Problem.valves in
  let special =
    List.fold_left
      (fun acc (v : Valve.t) -> Point.Set.add v.position acc)
      (Point.Set.of_list problem.Pacor.Problem.pins)
      problem.Pacor.Problem.valves
  in
  let plain p = not (Point.Set.mem p special) in
  let cells = ref [] and seen = ref Point.Set.empty in
  let add_cell p =
    if plain p && not (Point.Set.mem p !seen) then begin
      seen := Point.Set.add p !seen;
      cells := p :: !cells
    end
  in
  let segments = ref [] and seen_seg = ref [] in
  let add_segment a b =
    if plain a && plain b then begin
      let seg = norm_segment a b in
      if not (List.mem seg !seen_seg) then begin
        seen_seg := seg :: !seen_seg;
        segments := seg :: !segments
      end
    end
  in
  let add_path path =
    let pts = Path.points path in
    List.iter add_cell pts;
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        add_segment a b;
        pairs rest
      | [] | [ _ ] -> ()
    in
    pairs pts
  in
  List.iter
    (fun (c : Pacor.Solution.routed_cluster) ->
       List.iter add_path c.routed.Pacor.Routed.paths;
       Point.Set.iter add_cell c.routed.Pacor.Routed.claimed;
       match c.escape with
       | None -> ()
       | Some e -> add_path e.Pacor_flow.Escape.path)
    sol.Pacor.Solution.clusters;
  (valves, Array.of_list (List.rev !cells), Array.of_list (List.rev !segments))

let inject_avoiding ~rng ~rate ~avoid (sol : Pacor.Solution.t) =
  if rate <= 0. then []
  else begin
    let valves, cells, segments = site_pools sol in
    let n = max 1 (int_of_float (Float.round (rate *. float_of_int (Array.length valves)))) in
    let taken = ref avoid in
    let faults = ref [] in
    let count = ref 0 in
    let attempts = ref 0 in
    (* Site collisions are re-rolled; the attempt cap only matters when the
       pools are nearly exhausted (tiny chip, huge rate) and turns that
       into a short fault list instead of a spin. *)
    let max_attempts = (8 * n) + 16 in
    while !count < n && !attempts < max_attempts do
      incr attempts;
      let stuck () =
        let v = Pacor_designs.Rng.pick_array rng valves in
        Stuck_valve { valve = v.Valve.id; stuck_open = Pacor_designs.Rng.bool rng }
      in
      let fault =
        match Pacor_designs.Rng.int rng ~bound:4 with
        | 2 when Array.length cells > 0 ->
          Blocked_cell (Pacor_designs.Rng.pick_array rng cells)
        | 3 when Array.length segments > 0 ->
          let a, b = Pacor_designs.Rng.pick_array rng segments in
          Leaky_segment { a; b }
        | _ -> stuck ()
      in
      if not (List.exists (same_site fault) !taken) then begin
        taken := fault :: !taken;
        faults := fault :: !faults;
        incr count
      end
    done;
    List.rev !faults
  end

let inject ~rng ~rate sol = inject_avoiding ~rng ~rate ~avoid:[] sol

type spec = {
  rate : float;
  seed : int64;
  explicit : t list;
}

let parse_point s =
  match String.split_on_char ':' s with
  | [ x; y ] ->
    (match (int_of_string_opt x, int_of_string_opt y) with
     | Some x, Some y -> Ok (Point.make x y)
     | _ -> Error (Printf.sprintf "bad coordinate %S (want X:Y)" s))
  | _ -> Error (Printf.sprintf "bad coordinate %S (want X:Y)" s)

let parse_token tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "bad fault directive %S (want key=value)" tok)
  | Some i ->
    let key = String.sub tok 0 i in
    let value = String.sub tok (i + 1) (String.length tok - i - 1) in
    (match key with
     | "rate" ->
       (match float_of_string_opt value with
        | Some r when r >= 0. -> Ok (`Rate r)
        | _ -> Error (Printf.sprintf "bad rate %S" value))
     | "seed" ->
       (match Int64.of_string_opt value with
        | Some s -> Ok (`Seed s)
        | None -> Error (Printf.sprintf "bad seed %S" value))
     | "stuck" | "stuck-closed" ->
       (match int_of_string_opt value with
        | Some id when id >= 0 ->
          Ok (`Fault (Stuck_valve { valve = id; stuck_open = false }))
        | _ -> Error (Printf.sprintf "bad valve id %S" value))
     | "stuck-open" ->
       (match int_of_string_opt value with
        | Some id when id >= 0 ->
          Ok (`Fault (Stuck_valve { valve = id; stuck_open = true }))
        | _ -> Error (Printf.sprintf "bad valve id %S" value))
     | "cell" ->
       (match parse_point value with
        | Ok p -> Ok (`Fault (Blocked_cell p))
        | Error e -> Error e)
     | "leak" ->
       (match String.split_on_char '-' value with
        | [ a; b ] ->
          (match (parse_point a, parse_point b) with
           | Ok a, Ok b ->
             if Point.manhattan a b = 1 then Ok (`Fault (Leaky_segment { a; b }))
             else Error (Printf.sprintf "leak endpoints %S are not adjacent" value)
           | Error e, _ | _, Error e -> Error e)
        | _ -> Error (Printf.sprintf "bad leak %S (want X:Y-X:Y)" value))
     | _ -> Error (Printf.sprintf "unknown fault directive %S" key))

let parse_spec s =
  let tokens =
    List.filter (fun t -> t <> "") (List.map String.trim (String.split_on_char ',' s))
  in
  if tokens = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc tok ->
         match acc with
         | Error _ as e -> e
         | Ok spec ->
           (match parse_token tok with
            | Ok (`Rate rate) -> Ok { spec with rate }
            | Ok (`Seed seed) -> Ok { spec with seed }
            | Ok (`Fault f) -> Ok { spec with explicit = spec.explicit @ [ f ] }
            | Error e -> Error e))
      (Ok { rate = 0.; seed = 1L; explicit = [] })
      tokens

let realise spec sol =
  let rng = Pacor_designs.Rng.create ~seed:spec.seed in
  spec.explicit @ inject_avoiding ~rng ~rate:spec.rate ~avoid:spec.explicit sol
