(** Post-fabrication fault model for a routed chip.

    A fault hits a chip {e after} routing: a valve membrane sticks, a
    routing cell is fouled by debris, or a channel segment delaminates and
    leaks. Faults are defined against a concrete {!Pacor.Solution.t} — the
    injection sites are the solution's own valves, channel cells and
    channel segments — and the online-repair engine ({!Repair}) re-routes
    around them instead of re-running the whole flow. *)

open Pacor_geom
open Pacor_valve

type t =
  | Stuck_valve of { valve : Valve.id; stuck_open : bool }
      (** The valve membrane no longer actuates. Whether it froze open or
          closed matters to the assay, not to routing: either way the valve
          is dead weight and its cluster must be re-routed without it. *)
  | Blocked_cell of Point.t
      (** A routing cell became unusable (debris, collapsed channel roof).
          Every channel crossing it must move. *)
  | Leaky_segment of { a : Point.t; b : Point.t }
      (** The channel segment between two adjacent cells leaks. Repair
          conservatively retires {e both} endpoint cells — a leak at the
          wall contaminates whatever flows through either side. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Derived fault footprint} *)

val blocked_cells : t list -> Point.t list
(** The cells the fault set removes from the routing grid, deduplicated:
    every [Blocked_cell] plus both endpoints of every [Leaky_segment].
    Stuck valves contribute nothing here — their cell stays routable, the
    valve itself is retired via {!stuck_valves}. *)

val stuck_valves : t list -> Valve.id list
(** Ids of all stuck valves, deduplicated, sorted. *)

val apply : Pacor.Problem.t -> t list -> (Pacor.Problem.t, string) result
(** The problem instance as the fault set leaves it:
    {!Pacor.Problem.with_faults} with this fault set's {!blocked_cells}
    and {!stuck_valves}. This is what a full re-route (the repair
    baseline) must solve. *)

(** {2 Seeded injection} *)

val inject : rng:Pacor_designs.Rng.t -> rate:float -> Pacor.Solution.t -> t list
(** [inject ~rng ~rate sol] draws a deterministic fault set from the
    solution's own structure. The fault count is [rate x valve-count],
    rounded, at least one for any positive rate; a non-positive rate
    yields no faults. Kinds are drawn roughly 1/2 stuck valve (open or
    closed by coin flip), 1/4 blocked cell, 1/4 leaky segment; cell and
    segment sites come from the routed channels (internal and escape),
    never from a valve cell or a candidate pin, so a fault is always
    distinct from a stuck valve and never makes the instance trivially
    invalid. Sites never repeat; when a pool is empty (e.g. a chip whose
    clusters are all singletons has no segments) the draw falls back to a
    stuck valve. Same rng state and solution => identical fault list. *)

(** {2 Fault specifications (CLI / bench)} *)

type spec = {
  rate : float;      (** random-fault rate for {!inject}; 0 = none *)
  seed : int64;      (** rng seed for the random component *)
  explicit : t list; (** hand-placed faults, applied before the random ones *)
}

val parse_spec : string -> (spec, string) result
(** Comma-separated directives, e.g.
    ["rate=0.05,seed=42,stuck=3,stuck-open=7,cell=10:4,leak=2:3-2:4"]:
    - [rate=F]        random fault rate (default 0);
    - [seed=N]        injection seed (default 1);
    - [stuck=ID]      valve [ID] stuck closed;
    - [stuck-open=ID] valve [ID] stuck open;
    - [cell=X:Y]      blocked cell;
    - [leak=X:Y-X:Y]  leaky segment between two adjacent cells. *)

val realise : spec -> Pacor.Solution.t -> t list
(** The concrete fault list: the explicit faults followed by the seeded
    random ones ([inject] with a fresh rng from [spec.seed]), explicit
    sites excluded from the random draw. *)
