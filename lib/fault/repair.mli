(** Online repair: rip up only what a fault set touches and re-route it.

    A full re-route of a faulted chip answers the right question at the
    wrong price — most channels are nowhere near the fault. [run] instead
    computes the {e dirty set} (clusters owning a stuck valve, clusters
    whose channels or escape cross a faulted cell), rips up exactly those,
    and re-routes them around the fault with the ordinary PACOR machinery:
    negotiation-based candidate routing for length-matched clusters, MST /
    singleton fallback, one global min-cost-flow escape solve
    ({!Pacor_flow.Escape}, Grid solver) over the replacement clusters, and
    the detour stage to restore length matching. Untouched clusters are
    reused as-is — their paths come out byte-identical.

    The whole repair runs under a {!Pacor_route.Budget} attached to the
    workspace, so a pathological fault set degrades (clusters fall back to
    singleton routing, refinement is skipped) instead of hanging. A
    replacement cluster that cannot reach any pin is {e quarantined}: its
    valves are retired from the instance — the same graceful-degradation
    contract as the batch runner — and the fault is reported
    [Unrepairable], never raised. *)

open Pacor_valve

type fault_outcome =
  | Repaired            (** every affected cluster re-routed, matching kept *)
  | Degraded of string
      (** re-routed, but something was given up (length matching lost,
          budget tripped); the string names what *)
  | Unrepairable of string
      (** some affected cluster could not reach a pin; its valves were
          quarantined out of the instance *)

type report = {
  fault : Fault.t;
  outcome : fault_outcome;
  clusters : int list;  (** ids of the clusters this fault dirtied *)
}

type t = {
  solution : Pacor.Solution.t;
      (** the repaired solution, over the faulted problem (dead and
          quarantined valves removed); passes {!Pacor.Solution.validate} *)
  reports : report list;        (** one per input fault, input order *)
  dirty : int list;             (** cluster ids ripped up, sorted *)
  untouched : int;              (** clusters reused without re-routing *)
  quarantined : Valve.id list;  (** valves retired because no repair exists *)
  ripped_length : int;          (** channel length removed (incl. escapes) *)
  repaired_length : int;        (** channel length of the replacements *)
  wall_s : float;
}

val run :
  ?sched:Pacor_sched.Sched.t ->
  ?workspace:Pacor_route.Workspace.t ->
  ?limits:Pacor_route.Budget.limits ->
  faults:Fault.t list ->
  Pacor.Solution.t ->
  (t, string) result
(** [run ~faults sol] repairs [sol] in place of a re-route. [limits]
    bounds the repair search (default: the limits [sol] itself was routed
    under); the previous budget of [workspace] is restored on exit.
    [sched] shards the re-route's inner stages across a work-stealing
    scheduler when the effective limits are trip-free
    ({!Pacor_route.Budget.is_no_limits}); under real limits it is ignored,
    for the same determinism reason the engine strips it.
    [Error] only for structural impossibilities — the fault set leaves no
    valid instance (no surviving valve, fewer pins than valves) — never
    for congestion, which quarantines instead. *)

(** {2 The re-route core, exposed}

    The serving layer's delta handlers ([move_valve], [add_obstacle], …)
    need exactly the machinery [run] is built on — dirty-set rip-up, escape
    re-solve, quarantine — but against an instance mutated by an {e edit}
    rather than a fault overlay. These entry points expose that core. *)

val footprint : Pacor.Solution.routed_cluster -> Pacor_geom.Point.Set.t
(** Every cell a routed cluster occupies: claimed channel cells (valve
    cells included) plus its escape path. The membership test behind every
    dirty-set predicate. *)

val fault_touches : Fault.t -> Pacor.Solution.routed_cluster -> bool
(** Does this fault dirty this cluster? A stuck valve dirties its owner; a
    blocked cell or leak dirties every cluster whose {!footprint} contains
    a retired cell. *)

val dirty_set : faults:Fault.t list -> Pacor.Solution.t -> int list
(** Ids (sorted) of the clusters any fault in the list touches — what [run]
    would rip up, without ripping anything. The serving layer phrases
    non-fault deltas as pseudo-faults (an added obstacle is a
    [Blocked_cell], a moved valve a [Stuck_valve] plus a [Blocked_cell] at
    the destination) and reads the dirty set off this. *)

val reroute :
  ?sched:Pacor_sched.Sched.t ->
  ?workspace:Pacor_route.Workspace.t ->
  ?limits:Pacor_route.Budget.limits ->
  ?stage:string ->
  problem:Pacor.Problem.t ->
  is_dirty:(Pacor.Solution.routed_cluster -> bool) ->
  ?revise:(Cluster.t -> Cluster.t option) ->
  Pacor.Solution.t ->
  (t, string) result
(** [reroute ~problem ~is_dirty sol] rips up the clusters [is_dirty]
    selects and re-routes them against [problem] — an already-mutated
    variant of [sol.problem] (obstacle added or removed, valve moved…).
    [revise] maps each ripped cluster to the cluster to route in its place
    ([None] retires it; default: route it unchanged) — a moved valve's
    owner, for instance, needs its valve record updated to the new
    position. Untouched clusters are reused byte-identically, so the caller
    must ensure [is_dirty] covers every cluster [problem] invalidates
    (e.g. any cluster whose {!footprint} contains a newly blocked cell).
    [stage] names the appended stage in the solution's bookkeeping
    (default ["reroute"]). The result's [reports] list is empty — per-fault
    verdicts only make sense for [run]. *)

val pp_outcome : Format.formatter -> fault_outcome -> unit
val pp_report : Format.formatter -> report -> unit
val pp_summary : Format.formatter -> t -> unit
