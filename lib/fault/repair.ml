open Pacor_geom
open Pacor_grid
open Pacor_valve
module Int_set = Set.Make (Int)

type fault_outcome =
  | Repaired
  | Degraded of string
  | Unrepairable of string

type report = {
  fault : Fault.t;
  outcome : fault_outcome;
  clusters : int list;
}

type t = {
  solution : Pacor.Solution.t;
  reports : report list;
  dirty : int list;
  untouched : int;
  quarantined : Valve.id list;
  ripped_length : int;
  repaired_length : int;
  wall_s : float;
}

let escape_cells (c : Pacor.Solution.routed_cluster) =
  match c.escape with
  | None -> Point.Set.empty
  | Some e -> Point.Set.of_list (Path.points e.Pacor_flow.Escape.path)

let footprint (c : Pacor.Solution.routed_cluster) =
  Point.Set.union c.routed.Pacor.Routed.claimed (escape_cells c)

let claims_of routed_list =
  List.fold_left
    (fun acc (r : Pacor.Routed.t) -> Point.Set.union acc r.claimed)
    Point.Set.empty routed_list

(* Does this fault dirty this routed cluster? A stuck valve dirties its
   owner; a blocked cell or leak dirties every cluster whose channels or
   escape path run through the retired cells (valve cells are part of
   [claimed], so a blockage landing on a valve dirties its cluster too). *)
let touches fault (c : Pacor.Solution.routed_cluster) =
  match fault with
  | Fault.Stuck_valve { valve; _ } ->
    List.mem valve (Cluster.valve_ids c.routed.Pacor.Routed.cluster)
  | Fault.Blocked_cell p -> Point.Set.mem p (footprint c)
  | Fault.Leaky_segment { a; b } ->
    let fp = footprint c in
    Point.Set.mem a fp || Point.Set.mem b fp

let fault_touches = touches

let cluster_ids cs =
  List.sort Int.compare
    (List.map
       (fun (c : Pacor.Solution.routed_cluster) ->
          c.routed.Pacor.Routed.cluster.Cluster.id)
       cs)

let dirty_set ~faults (sol : Pacor.Solution.t) =
  cluster_ids
    (List.filter
       (fun c -> List.exists (fun f -> touches f c) faults)
       sol.Pacor.Solution.clusters)

(* Engine's solution-assembly rule for one replacement cluster. *)
let assemble ~delta (r : Pacor.Routed.t) escape =
  let escape_len =
    match escape with
    | None -> 0
    | Some (e : Pacor_flow.Escape.routed) -> Path.length e.path
  in
  let lengths =
    List.map (fun (vid, l) -> (vid, l + escape_len)) (Pacor.Routed.escape_anchor_lengths r)
  in
  let matched =
    Pacor.Routed.is_length_matched_shape r
    && escape <> None
    && (match Pacor.Routed.spread r with Some s -> s <= delta | None -> false)
  in
  { Pacor.Solution.routed = r; escape; lengths; matched }

(* The re-route core, shared by fault repair and the serving layer's delta
   handlers. [fproblem] is the already-mutated instance; [is_dirty] names
   the routed clusters to rip up; [revise] maps a ripped cluster to the
   cluster to route in its place ([None] retires it outright — e.g. every
   member valve died). Untouched clusters are reused without so much as a
   copy, so their channels stay byte-identical. *)
type rerouted = {
  r_solution : Pacor.Solution.t;
  r_dirty : Pacor.Solution.routed_cluster list;
  r_rebuilt : Pacor.Solution.routed_cluster list;
  r_untouched : int;
  r_quarantined : Valve.id list;
  r_ripped_length : int;
  r_repaired_length : int;
  r_wall_s : float;
}

let reroute_inner ?sched ~workspace ~budget ~stage ~fproblem ~is_dirty ~revise
    (sol : Pacor.Solution.t) =
  let t0 = Pacor_route.Clock.now_mono () in
  let s0 = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats workspace) in
  (* Stage sharding is only deterministic when the armed budget cannot
     trip mid-stage (same gate as the engine): under real limits the trip
     point depends on operation interleaving, so stay sequential. *)
  let sched =
    if Pacor_route.Budget.is_no_limits (Pacor_route.Budget.limits_of budget)
    then sched
    else None
  in
  let config =
    match sched with
    | None -> sol.Pacor.Solution.config
    | Some _ -> { sol.Pacor.Solution.config with Pacor.Config.sched = sched }
  in
  let grid = fproblem.Pacor.Problem.grid in
  let delta = fproblem.Pacor.Problem.delta in
  let alive () = Pacor_route.Budget.alive budget in
  (* Dirty set: exactly the clusters the caller names. Everything else is
     reused as-is, so untouched channels stay byte-identical. *)
  let untouched, dirty =
    List.partition (fun c -> not (is_dirty c)) sol.Pacor.Solution.clusters
  in
  (* Internal routing treats valve cells and candidate pins as blockages,
     exactly like the engine (pins are reserved for escape channels). *)
  let valve_cells =
    List.fold_left
      (fun acc p -> Point.Set.add p acc)
      (Point.Set.of_list
         (List.map (fun (v : Valve.t) -> v.position) fproblem.Pacor.Problem.valves))
      fproblem.Pacor.Problem.pins
  in
  let untouched_forbidden =
    List.fold_left
      (fun acc c -> Point.Set.union acc (footprint c))
      Point.Set.empty untouched
  in
  let used_pins =
    List.filter_map
      (fun (c : Pacor.Solution.routed_cluster) ->
         Option.map (fun (e : Pacor_flow.Escape.routed) -> e.pin) c.escape)
      untouched
  in
  let available_pins =
    List.filter
      (fun p -> not (List.exists (Point.equal p) used_pins))
      fproblem.Pacor.Problem.pins
  in
  let next_id =
    ref
      (1
       + List.fold_left
           (fun m (c : Pacor.Solution.routed_cluster) ->
              max m c.routed.Pacor.Routed.cluster.Cluster.id)
           0 sol.Pacor.Solution.clusters)
  in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Rip-up and re-route, sequentially so each replacement avoids the
     claims of the ones routed before it. A dirty length-matched cluster
     first retries its DME candidates around the change; when none routes
     (or the budget is dead and every search fails fast) it falls back to
     MST / singleton routing, which cannot fail. *)
  let reroute_one forbidden (cluster : Cluster.t) =
    let lm_attempt () =
      if not (Cluster.needs_matching cluster && alive ()) then None
      else begin
        let usable p =
          Routing_grid.free grid p
          && (not (Point.Set.mem p valve_cells))
          && not (Point.Set.mem p forbidden)
        in
        let obstacles = Routing_grid.fresh_work_map grid in
        Point.Set.iter (Obstacle_map.block obstacles) valve_cells;
        Point.Set.iter (Obstacle_map.block obstacles) forbidden;
        let candidates = Pacor.Cluster_route.candidates_for ~config ~grid ~usable cluster in
        List.find_map
          (fun cand ->
             if alive () then
               Pacor.Cluster_route.route_single ~workspace ~config ~grid ~obstacles
                 cluster cand
             else None)
          candidates
      end
    in
    match lm_attempt () with
    | Some r -> [ r ]
    | None ->
      let out =
        Pacor.Plain_route.route_all ~workspace ~grid ~valve_cells
          ~already_claimed:forbidden ~fresh_id [ cluster ]
      in
      out.Pacor.Plain_route.routed
  in
  let replacements =
    List.fold_left
      (fun done_ (c : Pacor.Solution.routed_cluster) ->
         match revise c.routed.Pacor.Routed.cluster with
         | None -> done_ (* retired: e.g. every valve dead *)
         | Some cluster' ->
           let forbidden = Point.Set.union untouched_forbidden (claims_of done_) in
           done_ @ reroute_one forbidden cluster')
      [] dirty
  in
  (* One global escape solve for all replacements, against the untouched
     clusters' channels and escape paths and the pins they already use. *)
  let escape_solve replacements =
    if replacements = [] then
      Ok { Pacor_flow.Escape.routed = []; failed = []; total_length = 0 }
    else
      Pacor_flow.Escape.route ~alive ~workspace ~solver:Pacor_flow.Escape.Grid ~grid
        ~claimed:(Point.Set.union untouched_forbidden (claims_of replacements))
        ~pins:available_pins
        (List.mapi
           (fun i (r : Pacor.Routed.t) ->
              { Pacor_flow.Escape.cluster_idx = i; start_cells = Pacor.Routed.start_cells r })
           replacements)
  in
  (* Escape with the engine's rip-up ladder, scoped to the replacements:
     a pinless length-matched tree is demoted to ordinary MST routing, a
     pinless multi-valve ordinary cluster is declustered into singletons
     (which claim just their valve cell and escape from there). Only when
     the ladder bottoms out — or the budget dies — does a cluster stay
     pinless. *)
  let rec escape_loop round replacements =
    match escape_solve replacements with
    | Error _ as e -> e
    | Ok out ->
      let escaped idx = List.exists (fun (e : Pacor_flow.Escape.routed) -> e.idx = idx)
                          out.Pacor_flow.Escape.routed in
      let any_failed =
        List.exists (fun i -> not (escaped i))
          (List.mapi (fun i _ -> i) replacements)
      in
      if (not any_failed)
         || round >= config.Pacor.Config.max_ripup_rounds
         || not (alive ())
      then Ok (replacements, out)
      else begin
        let keep, failed =
          List.partition_map
            (fun (i, r) -> if escaped i then Either.Left r else Either.Right r)
            (List.mapi (fun i r -> (i, r)) replacements)
        in
        let changed = ref false in
        let rec go done_ = function
          | [] -> done_
          | (r : Pacor.Routed.t) :: rest ->
            let forbidden =
              Point.Set.union untouched_forbidden
                (claims_of (keep @ done_ @ rest))
            in
            let replacement =
              if Pacor.Routed.is_length_matched_shape r then begin
                changed := true;
                let out =
                  Pacor.Plain_route.route_all ~workspace ~grid ~valve_cells
                    ~already_claimed:forbidden ~fresh_id [ r.cluster ]
                in
                out.Pacor.Plain_route.routed
              end
              else if Cluster.size r.cluster >= 2 then begin
                changed := true;
                List.map Pacor.Routed.make_singleton (Cluster.split r.cluster ~fresh_id)
              end
              else [ r ]
            in
            go (done_ @ replacement) rest
        in
        let failed = go [] failed in
        if !changed then escape_loop (round + 1) (keep @ failed)
        else Ok (replacements, out)
      end
  in
  (match escape_loop 0 replacements with
   | Error e -> Error (stage ^ ": escape: " ^ e)
   | Ok (replacements, escape_out) ->
     let escape_by_idx : (int, Pacor_flow.Escape.routed) Hashtbl.t = Hashtbl.create 16 in
     List.iter
       (fun (e : Pacor_flow.Escape.routed) -> Hashtbl.replace escape_by_idx e.idx e)
       escape_out.Pacor_flow.Escape.routed;
     (* A replacement still pinless after the ladder is unrepairable
        congestion: quarantine its valves out of the instance rather than
        ship a dead channel. *)
     let kept, quarantined_routes =
       let indexed = List.mapi (fun i r -> (i, r)) replacements in
       List.partition_map
         (fun (i, r) ->
            match Hashtbl.find_opt escape_by_idx i with
            | Some e -> Either.Left (r, e)
            | None -> Either.Right r)
         indexed
     in
     let quarantined =
       List.concat_map
         (fun (r : Pacor.Routed.t) -> Cluster.valve_ids r.cluster)
         quarantined_routes
       |> List.sort_uniq Int.compare
     in
     let final_problem =
       if quarantined = [] then Ok fproblem
       else Pacor.Problem.with_faults fproblem ~blocked:[] ~dead_valves:quarantined
     in
     (match final_problem with
      | Error e -> Error (stage ^ ": quarantine: " ^ e)
      | Ok final_problem ->
        (* Detour the re-routed trees back under delta (pure refinement:
           skipped outright on a dead budget, like the engine's gate). *)
        let kept_routes = List.map fst kept in
        let kept_routes =
          let needs_detour (r : Pacor.Routed.t) =
            match r.shape with Some (Pacor.Routed.Tree _) -> true | _ -> false
          in
          if (not (List.exists needs_detour kept_routes)) || not (alive ()) then
            kept_routes
          else begin
            let escape_cells_all =
              List.fold_left
                (fun acc ((_ : Pacor.Routed.t), (e : Pacor_flow.Escape.routed)) ->
                   List.fold_left
                     (fun s p -> Point.Set.add p s)
                     acc (Path.points e.path))
                (List.fold_left
                   (fun acc c -> Point.Set.union acc (escape_cells c))
                   Point.Set.empty untouched)
                kept
            in
            let blocked =
              Point.Set.union valve_cells
                (Point.Set.union untouched_forbidden
                   (Point.Set.union (claims_of kept_routes) escape_cells_all))
            in
            let out =
              Pacor.Detour_stage.run ~workspace ~grid ~delta ~theta:config.Pacor.Config.theta
                ~blocked kept_routes
            in
            out.Pacor.Detour_stage.updated
          end
        in
        let escapes = List.map snd kept in
        let rebuilt =
          List.map2 (fun r e -> assemble ~delta r (Some e)) kept_routes escapes
        in
        let wall_s = Pacor_route.Clock.now_mono () -. t0 in
        let s1 =
          Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats workspace)
        in
        let stage_outcome =
          match Pacor_route.Budget.exhausted budget with
          | None -> Pacor.Solution.Completed
          | Some Pacor_route.Budget.Deadline -> Pacor.Solution.Timed_out
          | Some r -> Pacor.Solution.Degraded (Pacor_route.Budget.reason_label r)
        in
        let solution =
          {
            Pacor.Solution.problem = final_problem;
            config;
            clusters = untouched @ rebuilt;
            initial_multi_clusters = sol.Pacor.Solution.initial_multi_clusters;
            runtime_s = sol.Pacor.Solution.runtime_s +. wall_s;
            stage_seconds = sol.Pacor.Solution.stage_seconds @ [ (stage, wall_s) ];
            stage_search =
              sol.Pacor.Solution.stage_search
              @ [ (stage, Pacor_route.Search_stats.diff s1 s0) ];
            stage_outcomes =
              sol.Pacor.Solution.stage_outcomes @ [ (stage, stage_outcome) ];
            budget_exhausted = Pacor_route.Budget.exhausted budget;
          }
        in
        let sum_length cs =
          List.fold_left
            (fun acc c -> acc + Pacor.Solution.cluster_total_length c)
            0 cs
        in
        Ok
          {
            r_solution = solution;
            r_dirty = dirty;
            r_rebuilt = rebuilt;
            r_untouched = List.length untouched;
            r_quarantined = quarantined;
            r_ripped_length = sum_length dirty;
            r_repaired_length = sum_length rebuilt;
            r_wall_s = wall_s;
          }))

(* Budget/workspace plumbing shared by [run] and [reroute]: install the
   armed budget for the duration, restore the previous one on every exit
   path, and keep the whole thing total. *)
let with_budget ?workspace ?limits ~stage (sol : Pacor.Solution.t) f =
  let workspace =
    match workspace with Some w -> w | None -> Pacor_route.Workspace.create ()
  in
  let limits =
    match limits with
    | Some l -> l
    | None -> sol.Pacor.Solution.config.Pacor.Config.limits
  in
  let budget = Pacor_route.Budget.create limits in
  let saved = Pacor_route.Workspace.budget workspace in
  Pacor_route.Workspace.set_budget workspace budget;
  Pacor_route.Budget.arm budget;
  Fun.protect
    ~finally:(fun () -> Pacor_route.Workspace.set_budget workspace saved)
    (fun () ->
      try f ~workspace ~budget with
      | Stack_overflow -> Error (stage ^ ": stack overflow")
      | exn -> Error (stage ^ ": " ^ Printexc.to_string exn))

let reroute ?sched ?workspace ?limits ?(stage = "reroute") ~problem ~is_dirty
    ?(revise = fun c -> Some c) (sol : Pacor.Solution.t) =
  with_budget ?workspace ?limits ~stage sol (fun ~workspace ~budget ->
    match reroute_inner ?sched ~workspace ~budget ~stage ~fproblem:problem ~is_dirty ~revise sol with
    | Error _ as e -> e
    | Ok rr ->
      Ok
        {
          solution = rr.r_solution;
          reports = [];
          dirty = cluster_ids rr.r_dirty;
          untouched = rr.r_untouched;
          quarantined = rr.r_quarantined;
          ripped_length = rr.r_ripped_length;
          repaired_length = rr.r_repaired_length;
          wall_s = rr.r_wall_s;
        })

let run ?sched ?workspace ?limits ~faults (sol : Pacor.Solution.t) =
  with_budget ?workspace ?limits ~stage:"repair" sol (fun ~workspace ~budget ->
    let problem = sol.Pacor.Solution.problem in
    let blocked = Fault.blocked_cells faults in
    let blocked_set = Point.Set.of_list blocked in
    let stuck = Fault.stuck_valves faults in
    match Pacor.Problem.with_faults problem ~blocked ~dead_valves:stuck with
    | Error e -> Error ("repair: " ^ e)
    | Ok fproblem ->
      (* Valves dead to the faults: stuck ones plus any valve standing on a
         retired cell (the same rule [with_faults] applied). *)
      let dead =
        List.fold_left
          (fun acc (v : Valve.t) ->
             if Point.Set.mem v.position blocked_set then Int_set.add v.id acc else acc)
          (Int_set.of_list stuck) problem.Pacor.Problem.valves
      in
      let revise (cluster : Cluster.t) =
        match
          List.filter
            (fun (v : Valve.t) -> not (Int_set.mem v.id dead))
            cluster.Cluster.valves
        with
        | [] -> None (* every valve dead: the cluster retires with them *)
        | survivors ->
          (match
             Cluster.make ~id:cluster.Cluster.id
               ~length_matched:cluster.Cluster.length_matched survivors
           with
           | Ok c -> Some c
           | Error _ ->
             (* A subset of a pairwise-compatible set stays compatible;
                only reachable if the input solution was malformed. *)
             Some
               (Cluster.make_exn ~id:cluster.Cluster.id ~length_matched:false
                  survivors))
      in
      let is_dirty c = List.exists (fun f -> touches f c) faults in
      (match
         reroute_inner ?sched ~workspace ~budget ~stage:"repair" ~fproblem ~is_dirty ~revise sol
       with
       | Error _ as e -> e
       | Ok rr ->
         (* Per-fault verdicts, from what happened to the clusters each
            fault touched. *)
         let quarantined_set = Int_set.of_list rr.r_quarantined in
         let matched_now =
           (* Surviving valve id -> is its new cluster length-matched. A
              replacement too small to need matching (a singleton left by a
              stuck valve) is trivially matched, not a degradation. *)
           let tbl : (Valve.id, bool) Hashtbl.t = Hashtbl.create 16 in
           List.iter
             (fun (c : Pacor.Solution.routed_cluster) ->
                let cluster = c.routed.Pacor.Routed.cluster in
                let ok = c.matched || not (Cluster.needs_matching cluster) in
                List.iter (fun vid -> Hashtbl.replace tbl vid ok) (Cluster.valve_ids cluster))
             rr.r_rebuilt;
           tbl
         in
         let budget_reason = Pacor_route.Budget.exhausted budget in
         let report_for fault =
           let touched = List.filter (fun c -> touches fault c) rr.r_dirty in
           let ids = cluster_ids touched in
           let valves_of (c : Pacor.Solution.routed_cluster) =
             Cluster.valve_ids c.routed.Pacor.Routed.cluster
           in
           let lost_valve =
             List.concat_map valves_of touched
             |> List.find_opt (fun v -> Int_set.mem v quarantined_set)
           in
           let matching_lost =
             List.exists
               (fun (c : Pacor.Solution.routed_cluster) ->
                  c.matched
                  && List.exists
                       (fun v ->
                          match Hashtbl.find_opt matched_now v with
                          | Some m -> not m
                          | None -> false)
                       (valves_of c))
               touched
           in
           let outcome =
             match lost_valve with
             | Some v ->
               Unrepairable (Printf.sprintf "valve %d quarantined: no escape pin" v)
             | None ->
               if matching_lost then Degraded "length matching lost"
               else (
                 match budget_reason with
                 | Some r when touched <> [] ->
                   Degraded ("budget: " ^ Pacor_route.Budget.reason_label r)
                 | Some _ | None -> Repaired)
           in
           { fault; outcome; clusters = ids }
         in
         Ok
           {
             solution = rr.r_solution;
             reports = List.map report_for faults;
             dirty = cluster_ids rr.r_dirty;
             untouched = rr.r_untouched;
             quarantined = rr.r_quarantined;
             ripped_length = rr.r_ripped_length;
             repaired_length = rr.r_repaired_length;
             wall_s = rr.r_wall_s;
           }))

let pp_outcome ppf = function
  | Repaired -> Format.pp_print_string ppf "repaired"
  | Degraded why -> Format.fprintf ppf "degraded (%s)" why
  | Unrepairable why -> Format.fprintf ppf "unrepairable (%s)" why

let pp_report ppf r =
  Format.fprintf ppf "%a -> %a" Fault.pp r.fault pp_outcome r.outcome;
  match r.clusters with
  | [] -> Format.fprintf ppf " (no cluster affected)"
  | ids ->
    Format.fprintf ppf " (cluster%s %a)"
      (if List.length ids > 1 then "s" else "")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      ids

let pp_summary ppf t =
  let count p = List.length (List.filter p t.reports) in
  Format.fprintf ppf
    "%d faults: %d repaired, %d degraded, %d unrepairable; %d clusters ripped, %d untouched, %d valves quarantined; length %d -> %d; %.3fs"
    (List.length t.reports)
    (count (fun r -> r.outcome = Repaired))
    (count (fun r -> match r.outcome with Degraded _ -> true | _ -> false))
    (count (fun r -> match r.outcome with Unrepairable _ -> true | _ -> false))
    (List.length t.dirty) t.untouched
    (List.length t.quarantined)
    t.ripped_length t.repaired_length t.wall_s
