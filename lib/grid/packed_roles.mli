(** Dense per-cell role layer packed two bits per cell.

    The escape stage's flow-network builder classifies every grid cell into
    one of four roles (excluded / ordinary transit / pin / start). At
    1000x1000+ cells the one-byte-per-cell array it used to build is a
    megabyte touched twice per emitted arc; packing four cells per byte
    quarters the footprint, keeps the hot read a shift-and-mask, and lets
    the buffer come from a {!Pacor_route.Workspace} scratch lease instead
    of a per-call allocation.

    Roles are plain ints [0..3]; callers define the meaning. The unchecked
    {!get}/{!set} are the hot path (in-bounds indices only); the [checked_]
    variants are for cold call sites and tests. *)

type t

val create : int -> t
(** [create len] is a layer of [len] cells, all role [0]. *)

val bytes_needed : int -> int
(** Backing bytes required for [len] cells ([(len + 3) / 4]). *)

val wrap : len:int -> Bytes.t -> t
(** View an existing buffer (e.g. a workspace scratch lease) as a layer of
    [len] cells without copying. The buffer must be at least
    {!bytes_needed}[ len] long; existing contents are kept — callers that
    need a clean layer follow with {!clear}. *)

val length : t -> int
val clear : t -> unit
(** Reset every cell to role [0]. *)

val get : t -> int -> int
(** Unchecked read (hot path). *)

val set : t -> int -> int -> unit
(** Unchecked write of a role in [0..3] (hot path; higher bits of the role
    are masked off). *)

val checked_get : t -> int -> int
val checked_set : t -> int -> int -> unit
