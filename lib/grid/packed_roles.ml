(* Four-valued per-cell role layer packed two bits per cell. *)

type t = {
  data : Bytes.t;
  len : int;
}

let bytes_needed len = (len + 3) lsr 2

let create len =
  if len < 0 then invalid_arg "Packed_roles.create: negative length";
  { data = Bytes.make (bytes_needed len) '\000'; len }

let wrap ~len data =
  if Bytes.length data < bytes_needed len then
    invalid_arg "Packed_roles.wrap: buffer smaller than the packed length";
  { data; len }

let length t = t.len

let clear t = Bytes.fill t.data 0 (bytes_needed t.len) '\000'

let[@inline] get t i =
  (Char.code (Bytes.unsafe_get t.data (i lsr 2)) lsr ((i land 3) * 2)) land 3

let[@inline] set t i v =
  let byte = i lsr 2 and off = (i land 3) * 2 in
  let old = Char.code (Bytes.unsafe_get t.data byte) in
  Bytes.unsafe_set t.data byte
    (Char.unsafe_chr ((old land lnot (3 lsl off)) lor ((v land 3) lsl off)))

let checked_get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed_roles.checked_get: index out of range";
  get t i

let checked_set t i v =
  if i < 0 || i >= t.len then invalid_arg "Packed_roles.checked_set: index out of range";
  if v < 0 || v > 3 then invalid_arg "Packed_roles.checked_set: role out of range";
  set t i v
