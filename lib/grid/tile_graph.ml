(* KxK coarsening of the routing grid for the hierarchical global stage. *)

open Pacor_geom

type t = {
  width : int;
  height : int;
  k : int;
  shift : int;
  tiles_x : int;
  tiles_y : int;
  free : int array;
  cap_right : int array;
  cap_down : int array;
}

let is_pow2 k = k > 0 && k land (k - 1) = 0

let shift_of k =
  let rec go s v = if v <= 1 then s else go (s + 1) (v lsr 1) in
  go 0 k

let create grid ~k =
  if not (is_pow2 k) then invalid_arg "Tile_graph.create: tile edge must be a power of two";
  let width = Routing_grid.width grid and height = Routing_grid.height grid in
  let shift = shift_of k in
  let tiles_x = (width + k - 1) lsr shift in
  let tiles_y = (height + k - 1) lsr shift in
  let tc = tiles_x * tiles_y in
  let free = Array.make tc 0 in
  let cap_right = Array.make tc 0 in
  let cap_down = Array.make tc 0 in
  (* One row-major pass: count free cells per tile and free adjacent pairs
     across each tile boundary. A pair contributes to the boundary between
     the tile owning the lower-index cell and its +x / +y neighbour tile. *)
  for y = 0 to height - 1 do
    let ty = y lsr shift in
    let trow = ty * tiles_x in
    let row = y * width in
    for x = 0 to width - 1 do
      let i = row + x in
      if Routing_grid.free_i grid i then begin
        let tx = x lsr shift in
        let tid = trow + tx in
        free.(tid) <- free.(tid) + 1;
        (* +x crossing: x is the last column of its tile and x+1 exists. *)
        if x land (k - 1) = k - 1 && x + 1 < width && Routing_grid.free_i grid (i + 1)
        then cap_right.(tid) <- cap_right.(tid) + 1;
        (* +y crossing: y is the last row of its tile and y+1 exists. *)
        if y land (k - 1) = k - 1 && y + 1 < height && Routing_grid.free_i grid (i + width)
        then cap_down.(tid) <- cap_down.(tid) + 1
      end
    done
  done;
  { width; height; k; shift; tiles_x; tiles_y; free; cap_right; cap_down }

let k t = t.k
let shift t = t.shift
let tiles_x t = t.tiles_x
let tiles_y t = t.tiles_y
let tile_count t = t.tiles_x * t.tiles_y
let grid_width t = t.width

let tile_index t ~tx ~ty = (ty * t.tiles_x) + tx

let tile_of_index t i =
  let x = i mod t.width and y = i / t.width in
  ((y lsr t.shift) * t.tiles_x) + (x lsr t.shift)

let tile_of_point t (p : Point.t) =
  ((p.y lsr t.shift) * t.tiles_x) + (p.x lsr t.shift)

let rect t tid =
  let tx = tid mod t.tiles_x and ty = tid / t.tiles_x in
  let x0 = tx lsl t.shift and y0 = ty lsl t.shift in
  Rect.make ~x0 ~y0
    ~x1:(min (x0 + t.k - 1) (t.width - 1))
    ~y1:(min (y0 + t.k - 1) (t.height - 1))

let free_cells t tid = t.free.(tid)

let boundary_capacity t a b =
  let d = b - a in
  if d = 1 && b mod t.tiles_x <> 0 then t.cap_right.(a)
  else if d = -1 && a mod t.tiles_x <> 0 then t.cap_right.(b)
  else if d = t.tiles_x then t.cap_down.(a)
  else if d = -t.tiles_x then t.cap_down.(b)
  else invalid_arg "Tile_graph.boundary_capacity: tiles not adjacent"

(* Emission order matches the cell-level searchers ([x+1; x-1; y+1; y-1])
   so tile-level tie-breaking is the same shape as cell-level. *)
let iter_neighbours t tid f =
  let tx = tid mod t.tiles_x in
  if tx + 1 < t.tiles_x then f (tid + 1);
  if tx > 0 then f (tid - 1);
  if tid + t.tiles_x < t.tiles_x * t.tiles_y then f (tid + t.tiles_x);
  if tid >= t.tiles_x then f (tid - t.tiles_x)

let tiles_of_rect t (r : Rect.t) =
  let tx0 = max 0 (r.x0 lsr t.shift)
  and ty0 = max 0 (r.y0 lsr t.shift)
  and tx1 = min (t.tiles_x - 1) (r.x1 lsr t.shift)
  and ty1 = min (t.tiles_y - 1) (r.y1 lsr t.shift) in
  let acc = ref [] in
  for ty = ty1 downto ty0 do
    for tx = tx1 downto tx0 do
      acc := tile_index t ~tx ~ty :: !acc
    done
  done;
  !acc

let cell_mask t tiles =
  let mask = Bytes.make (tile_count t) '\000' in
  List.iter (fun tid -> Bytes.unsafe_set mask tid '\001') tiles;
  mask

let mask_mem t mask i =
  Bytes.unsafe_get mask (tile_of_index t i) <> '\000'

let expand t tiles =
  let seen = Hashtbl.create 64 in
  let add tid = if not (Hashtbl.mem seen tid) then Hashtbl.add seen tid () in
  List.iter
    (fun tid ->
      let tx = tid mod t.tiles_x and ty = tid / t.tiles_x in
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          let nx = tx + dx and ny = ty + dy in
          if nx >= 0 && nx < t.tiles_x && ny >= 0 && ny < t.tiles_y then
            add (tile_index t ~tx:nx ~ty:ny)
        done
      done)
    tiles;
  let out = Hashtbl.fold (fun tid () acc -> tid :: acc) seen [] in
  List.sort compare out
