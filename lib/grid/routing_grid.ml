open Pacor_geom

type t = { width : int; height : int; obstacles : Obstacle_map.t }

let create ~width ~height ?(obstacles = []) () =
  let map = Obstacle_map.create ~width ~height in
  List.iter (Obstacle_map.block_rect map) obstacles;
  { width; height; obstacles = map }

let width t = t.width
let height t = t.height
let cells t = t.width * t.height
let obstacles t = t.obstacles

let with_extra_obstacles t points =
  let map = Obstacle_map.copy t.obstacles in
  Obstacle_map.block_points map points;
  { t with obstacles = map }

let without_obstacles t points =
  let map = Obstacle_map.copy t.obstacles in
  Obstacle_map.unblock_points map points;
  { t with obstacles = map }
let fresh_work_map t = Obstacle_map.copy t.obstacles
let in_bounds t p = Obstacle_map.in_bounds t.obstacles p
let blocked t p = Obstacle_map.blocked t.obstacles p
let free t p = Obstacle_map.free t.obstacles p

let on_boundary t (p : Point.t) =
  in_bounds t p && (p.x = 0 || p.y = 0 || p.x = t.width - 1 || p.y = t.height - 1)

let boundary_points t =
  let acc = ref [] in
  (* Walk the ring deterministically: bottom row, right column, top row,
     left column, without repeating corners. *)
  for x = 0 to t.width - 1 do
    acc := Point.make x 0 :: !acc
  done;
  for y = 1 to t.height - 1 do
    acc := Point.make (t.width - 1) y :: !acc
  done;
  if t.height > 1 then
    for x = t.width - 2 downto 0 do
      acc := Point.make x (t.height - 1) :: !acc
    done;
  if t.width > 1 then
    for y = t.height - 2 downto 1 do
      acc := Point.make 0 y :: !acc
    done;
  List.rev !acc

let free_neighbours t p = List.filter (free t) (Point.neighbours4 p)

let nearest_free t p =
  let max_radius = t.width + t.height in
  let rec search r =
    if r > max_radius then None
    else begin
      let candidates = List.filter (fun q -> in_bounds t q && free t q) (Point.ring p r) in
      match candidates with
      | [] -> search (r + 1)
      | _ :: _ ->
        (* Deterministic tie-break: minimal Manhattan distance, then point order. *)
        let better a b =
          let da = Point.manhattan p a and db = Point.manhattan p b in
          if da <> db then da < db else Point.compare a b < 0
        in
        let best = List.fold_left (fun acc q ->
          match acc with Some b when better b q -> acc | _ -> Some q) None candidates
        in
        best
    end
  in
  search 0

let index t (p : Point.t) = (p.y * t.width) + p.x
let point_of_index t i = Point.make (i mod t.width) (i / t.width)
let free_i t i = Obstacle_map.free_i t.obstacles i

let on_boundary_i t i =
  let x = i mod t.width and y = i / t.width in
  x = 0 || y = 0 || x = t.width - 1 || y = t.height - 1

(* Baseline transit mask for dense role arrays: byte [i] becomes 1 iff
   cell [i] is statically free and off the boundary ring, 0 otherwise.
   Row-wise fill so boundary rows/columns never pay a per-cell test. *)
let fill_interior_free t b =
  let w = t.width and h = t.height in
  if Bytes.length b < w * h then
    invalid_arg "Routing_grid.fill_interior_free: buffer smaller than the grid";
  Bytes.fill b 0 (w * h) '\000';
  for y = 1 to h - 2 do
    let row = y * w in
    for x = 1 to w - 2 do
      if Obstacle_map.free_i t.obstacles (row + x) then
        Bytes.unsafe_set b (row + x) '\001'
    done
  done

(* Packed variant of [fill_interior_free]: role 1 for free interior cells,
   role 0 elsewhere, two bits per cell. *)
let fill_interior_free_packed t pk =
  let w = t.width and h = t.height in
  if Packed_roles.length pk < w * h then
    invalid_arg "Routing_grid.fill_interior_free_packed: layer smaller than the grid";
  Packed_roles.clear pk;
  for y = 1 to h - 2 do
    let row = y * w in
    for x = 1 to w - 2 do
      if Obstacle_map.free_i t.obstacles (row + x) then Packed_roles.set pk (row + x) 1
    done
  done

(* Row-stride neighbour iteration for the search inner loops: no
   intermediate [Point.t] list, only in-bounds cells, and the emission
   order matches [Point.neighbours4] ([x+1; x-1; y+1; y-1]) so that
   heap push order — and therefore deterministic tie-breaking — is
   unchanged relative to the point-based loop. *)
let[@inline] iter_neighbours4 t i f =
  let w = t.width in
  let x = i mod w in
  if x + 1 < w then f (i + 1);
  if x > 0 then f (i - 1);
  if i + w < w * t.height then f (i + w);
  if i >= w then f (i - w)
