(** The uniform routing grid of the control layer.

    Couples the grid dimensions with the static obstacle map (fabrication
    blockages) and identifies the boundary cells where control pins may sit.
    Dynamic blockages (already-routed channels) are layered on top by the
    routers, so the static map here never changes after construction. *)

open Pacor_geom

type t

val create : width:int -> height:int -> ?obstacles:Rect.t list -> unit -> t

val width : t -> int
val height : t -> int
val cells : t -> int
val obstacles : t -> Obstacle_map.t
(** The static map itself (shared, do not mutate; use {!fresh_work_map}). *)

val fresh_work_map : t -> Obstacle_map.t
(** A private copy of the static obstacle map for a router to scribble on. *)

val with_extra_obstacles : t -> Pacor_geom.Point.t list -> t
(** A new grid whose static map additionally blocks the given cells (the
    fault overlay of the online-repair flow). The original grid is
    untouched; out-of-bounds points are ignored like {!Obstacle_map.block}. *)

val without_obstacles : t -> Pacor_geom.Point.t list -> t
(** The inverse overlay: a new grid whose static map frees the given cells
    (the serving layer's [remove_obstacle] delta). The original grid is
    untouched; out-of-bounds points are ignored. *)

val in_bounds : t -> Point.t -> bool
val blocked : t -> Point.t -> bool
val free : t -> Point.t -> bool

val on_boundary : t -> Point.t -> bool
(** True for in-bounds cells on the outermost ring of the grid. *)

val boundary_points : t -> Point.t list
(** All boundary cells, blocked or not, in deterministic order. *)

val free_neighbours : t -> Point.t -> Point.t list
(** In-bounds, statically free 4-neighbours. *)

val nearest_free : t -> Point.t -> Point.t option
(** Closest statically free cell to the given point, searching outward ring
    by ring (the embedding search of Sec. 4.1); [None] if the whole grid is
    blocked. *)

val index : t -> Point.t -> int
(** Dense index in [0, cells)] for array-backed router state. *)

val point_of_index : t -> int -> Point.t

val free_i : t -> int -> bool
(** {!free} by dense index; the index must be valid. *)

val on_boundary_i : t -> int -> bool
(** {!on_boundary} by dense index; the index must be valid. *)

val fill_interior_free : t -> Bytes.t -> unit
(** [fill_interior_free t b] writes a dense transit mask into [b] (which
    must hold at least {!cells} bytes): byte [i] is ['\001'] iff cell [i]
    is statically free {e and} off the boundary ring, ['\000'] otherwise.
    The baseline for role arrays layered by the flow network builder. *)

val fill_interior_free_packed : t -> Packed_roles.t -> unit
(** {!fill_interior_free} into a two-bit {!Packed_roles} layer (role [1]
    for free interior cells, [0] otherwise) — the allocation-light baseline
    the escape network builder layers pins and starts onto. The layer must
    hold at least {!cells} cells. *)

val iter_neighbours4 : t -> int -> (int -> unit) -> unit
(** [iter_neighbours4 t i f] applies [f] to the dense indices of the
    in-bounds 4-neighbours of cell [i], by row-stride arithmetic — no
    intermediate point list. Emission order matches {!Point.neighbours4}
    ([x+1], [x-1], [y+1], [y-1]) so search tie-breaking is identical to a
    point-based loop. *)
