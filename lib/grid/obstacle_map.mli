(** Mutable bit-packed obstacle map over a [width] x [height] routing grid.

    This is the [ObsMap] of Algorithm 1: the negotiation router marks routed
    paths as obstacles and clears them again on rip-up, so the map must be
    cheap to copy and to flip. Cells outside the grid count as blocked. *)

open Pacor_geom

type t

val create : width:int -> height:int -> t
(** All cells initially free. *)

val width : t -> int
val height : t -> int
val in_bounds : t -> Point.t -> bool

val blocked : t -> Point.t -> bool
(** [true] for obstructed cells and for any out-of-bounds point. *)

val free : t -> Point.t -> bool

val blocked_i : t -> int -> bool
(** [blocked_i t i] reads cell [i] of the dense row-major index space
    ([y * width + x], the same layout as {!Routing_grid.index}). Unlike
    {!blocked} the index must be valid — the routers' index-based
    neighbour iteration never produces an out-of-bounds cell. *)

val free_i : t -> int -> bool
(** [not (blocked_i t i)]. *)

val block : t -> Point.t -> unit
(** No-op out of bounds. *)

val unblock : t -> Point.t -> unit

val block_rect : t -> Rect.t -> unit
(** Block every in-bounds cell of the rectangle. *)

val block_points : t -> Point.t list -> unit
val unblock_points : t -> Point.t list -> unit

val blocked_count : t -> int
(** Number of obstructed in-bounds cells. *)

val copy : t -> t

val iter_blocked : t -> (Point.t -> unit) -> unit

val pp : Format.formatter -> t -> unit
(** ASCII rendering, ['#'] blocked / ['.'] free, row [height-1] on top. *)
