open Pacor_geom

type t = { width : int; height : int; bits : Bytes.t; mutable count : int }

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Obstacle_map.create: empty grid";
  let nbytes = ((width * height) + 7) / 8 in
  { width; height; bits = Bytes.make nbytes '\000'; count = 0 }

let width t = t.width
let height t = t.height

let in_bounds t (p : Point.t) = p.x >= 0 && p.x < t.width && p.y >= 0 && p.y < t.height

let index t (p : Point.t) = (p.y * t.width) + p.x

let get_bit t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i b =
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte' = if b then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set t.bits (i lsr 3) (Char.chr byte')

let blocked t p = (not (in_bounds t p)) || get_bit t (index t p)
let free t p = not (blocked t p)

(* Index variants for the routers' allocation-free inner loops: the caller
   guarantees [i] is a valid dense index (the index-based neighbour
   iteration only produces in-bounds cells). *)
let blocked_i t i = get_bit t i
let free_i t i = not (get_bit t i)

let block t p =
  if in_bounds t p then begin
    let i = index t p in
    if not (get_bit t i) then begin
      set_bit t i true;
      t.count <- t.count + 1
    end
  end

let unblock t p =
  if in_bounds t p then begin
    let i = index t p in
    if get_bit t i then begin
      set_bit t i false;
      t.count <- t.count - 1
    end
  end

let block_rect t (r : Rect.t) =
  for y = max 0 r.y0 to min (t.height - 1) r.y1 do
    for x = max 0 r.x0 to min (t.width - 1) r.x1 do
      block t (Point.make x y)
    done
  done

let block_points t ps = List.iter (block t) ps
let unblock_points t ps = List.iter (unblock t) ps
let blocked_count t = t.count
let copy t = { t with bits = Bytes.copy t.bits }

let iter_blocked t f =
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      let p = Point.make x y in
      if get_bit t (index t p) then f p
    done
  done

let pp ppf t =
  for y = t.height - 1 downto 0 do
    for x = 0 to t.width - 1 do
      Format.pp_print_char ppf (if blocked t (Point.make x y) then '#' else '.')
    done;
    if y > 0 then Format.pp_print_newline ppf ()
  done
