(** KxK coarsening of the routing grid for hierarchical global routing.

    The global stage plans over tiles instead of cells: each tile records
    how many statically free cells it holds, and each pair of adjacent
    tiles records its {e boundary capacity} — the number of free adjacent
    cell pairs straddling the shared edge, an upper bound on how many
    disjoint routes can cross it. The tile edge [k] must be a power of two
    so the cell→tile map is a shift, cheap enough to sit inside the
    detailed searchers' relax loop (via the workspace corridor mask).

    Tiles are indexed row-major: [tid = ty * tiles_x + tx]. Partial tiles
    on the right/bottom edges are clipped to the grid. *)

open Pacor_geom

type t

val create : Routing_grid.t -> k:int -> t
(** One row-major pass over the grid; raises [Invalid_argument] unless [k]
    is a power of two. *)

val k : t -> int
val shift : t -> int
(** [log2 k] — the cell→tile coordinate shift. *)

val tiles_x : t -> int
val tiles_y : t -> int
val tile_count : t -> int
val grid_width : t -> int
(** Width in cells of the underlying grid (for corridor installation). *)

val tile_index : t -> tx:int -> ty:int -> int
val tile_of_index : t -> int -> int
(** Tile owning a dense {e cell} index. *)

val tile_of_point : t -> Point.t -> int

val rect : t -> int -> Rect.t
(** Cell-space extent of a tile, clipped to the grid. *)

val free_cells : t -> int -> int
(** Statically free cells inside the tile. *)

val boundary_capacity : t -> int -> int -> int
(** [boundary_capacity t a b] for {e adjacent} tiles [a], [b]: the number
    of free cell pairs straddling their shared edge. Symmetric; raises
    [Invalid_argument] when the tiles are not 4-adjacent. *)

val iter_neighbours : t -> int -> (int -> unit) -> unit
(** 4-adjacent tiles, emitted [tx+1; tx-1; ty+1; ty-1] to match the
    cell-level searchers' tie-break order. *)

val tiles_of_rect : t -> Rect.t -> int list
(** Tiles overlapping a cell-space rectangle (clipped), ascending. *)

val cell_mask : t -> int list -> Bytes.t
(** One byte per tile, ['\001'] on the given tiles — a membership table
    for {!mask_mem}. *)

val mask_mem : t -> Bytes.t -> int -> bool
(** [mask_mem t mask i] — whether the tile owning dense cell index [i] is
    in the masked set. *)

val expand : t -> int list -> int list
(** One-tile Chebyshev halo around a tile set: the set plus all 8-adjacent
    tiles, deduplicated and sorted ascending. The corridor construction —
    a halo keeps the detailed search from hugging tile walls. *)
