(** Imperative binary min-heap keyed by integer priorities.

    Shared by A* search, Prim's MST and the min-cost-flow Dijkstra. Supports
    lazy decrease-key: push duplicates and let consumers skip stale pops. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Smallest priority first; ties popped in unspecified (but deterministic
    for a fixed push sequence) order. *)

val pop_top : 'a t -> 'a
(** Like {!pop} but returns the element alone, without allocating the
    option/tuple box — the searchers' hot path. Raises [Invalid_argument]
    on an empty queue; guard with {!is_empty}. *)

val peek : 'a t -> (int * 'a) option

val clear : 'a t -> unit
(** Empties the queue. Dropped elements become unreachable (up to one
    sentinel element retained by the backing array, as after {!pop}). *)
