type 'a t = {
  mutable prios : int array;
  mutable elems : 'a array;
  mutable len : int;
  (* One-element sentinel box, set at the first push. Vacated slots are
     overwritten with it so popped elements become unreachable — the
     backing array outlives the logical queue (it is reused across
     searches), and a dangling slot would otherwise pin arbitrary amounts
     of garbage. Retention is O(1): just the sentinel element itself. *)
  mutable sentinel : 'a array;
}

let create () = { prios = [||]; elems = [||]; len = 0; sentinel = [||] }
let is_empty t = t.len = 0
let size t = t.len

let grow t =
  let cap = Array.length t.prios in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    (* Fill with the sentinel, not the pushed element: untouched tail slots
       must not keep it reachable after it is popped. *)
    let nprios = Array.make ncap 0 and nelems = Array.make ncap t.sentinel.(0) in
    Array.blit t.prios 0 nprios 0 t.len;
    Array.blit t.elems 0 nelems 0 t.len;
    t.prios <- nprios;
    t.elems <- nelems
  end

let swap t i j =
  let p = t.prios.(i) and e = t.elems.(i) in
  t.prios.(i) <- t.prios.(j);
  t.elems.(i) <- t.elems.(j);
  t.prios.(j) <- p;
  t.elems.(j) <- e

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prios.(i) < t.prios.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prios.(l) < t.prios.(!smallest) then smallest := l;
  if r < t.len && t.prios.(r) < t.prios.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~prio x =
  if Array.length t.sentinel = 0 then t.sentinel <- [| x |];
  grow t;
  t.prios.(t.len) <- prio;
  t.elems.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) and x = t.elems.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prios.(0) <- t.prios.(t.len);
      t.elems.(0) <- t.elems.(t.len)
    end;
    t.elems.(t.len) <- t.sentinel.(0);
    if t.len > 0 then sift_down t 0;
    Some (prio, x)
  end

(* Allocation-free variant for the search inner loops: no option/tuple
   box per pop. Callers check [is_empty] first. *)
let pop_top t =
  if t.len = 0 then invalid_arg "Pqueue.pop_top: empty queue"
  else begin
    let x = t.elems.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prios.(0) <- t.prios.(t.len);
      t.elems.(0) <- t.elems.(t.len)
    end;
    t.elems.(t.len) <- t.sentinel.(0);
    if t.len > 0 then sift_down t 0;
    x
  end

let peek t = if t.len = 0 then None else Some (t.prios.(0), t.elems.(0))

(* Same retention concern as [pop]: blank the live prefix. *)
let clear t =
  if t.len > 0 then Array.fill t.elems 0 t.len t.sentinel.(0);
  t.len <- 0
