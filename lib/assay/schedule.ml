open Pacor_valve

type t = {
  phases : Phase.t list;
  valves : Valve.id list;
}

let make phases =
  match phases with
  | [] -> Error "schedule needs at least one phase"
  | _ :: _ ->
    let names = List.map (fun (p : Phase.t) -> p.name) phases in
    let dup =
      let sorted = List.sort String.compare names in
      let rec find = function
        | a :: b :: _ when String.equal a b -> Some a
        | _ :: rest -> find rest
        | [] -> None
      in
      find sorted
    in
    (match dup with
     | Some name -> Error (Printf.sprintf "duplicate phase name %S" name)
     | None ->
       let valves =
         List.concat_map
           (fun (p : Phase.t) ->
              List.map (fun (r : Phase.requirement) -> r.valve) p.requirements
              @ List.concat p.sync_groups)
           phases
         |> List.sort_uniq Int.compare
       in
       Ok { phases; valves })

let make_exn phases =
  match make phases with Ok t -> t | Error msg -> invalid_arg ("Schedule.make: " ^ msg)

let total_steps t =
  List.fold_left (fun acc (p : Phase.t) -> acc + p.duration) 0 t.phases

let sequence_of t valve =
  let steps = total_steps t in
  let seq = Array.make steps Activation.Dont_care in
  let pos = ref 0 in
  List.iter
    (fun (p : Phase.t) ->
       let state = Phase.state_of p valve in
       for i = !pos to !pos + p.duration - 1 do
         seq.(i) <- state
       done;
       pos := !pos + p.duration)
    t.phases;
  seq

let sequences t = List.map (fun v -> (v, sequence_of t v)) t.valves

let sync_clusters t =
  match t.valves with
  | [] -> Ok []
  | _ :: _ ->
    (* Union-find over valve ids (dense-indexed through their rank in
       [t.valves]). A valve id that a phase references but [t.valves] does
       not carry (possible when a [t] is assembled by hand rather than
       through {!make}) must surface as a diagnosable error, not an
       anonymous [Not_found] escaping from [Hashtbl.find]. *)
    let index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace index v i) t.valves;
    let rank v =
      match Hashtbl.find_opt index v with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Schedule.sync_clusters: unknown valve id %d in a sync group" v)
    in
    let uf = Pacor_graphs.Union_find.create (List.length t.valves) in
    List.iter
      (fun (p : Phase.t) ->
         List.iter
           (fun group ->
              match group with
              | [] | [ _ ] -> ()
              | first :: rest ->
                List.iter
                  (fun v ->
                     ignore (Pacor_graphs.Union_find.union uf (rank first) (rank v)))
                  rest)
           p.sync_groups)
      t.phases;
    (* Only valves that appear in some sync group form clusters. *)
    let synced =
      List.concat_map (fun (p : Phase.t) -> List.concat p.sync_groups) t.phases
      |> List.sort_uniq Int.compare
    in
    let by_root = Hashtbl.create 16 in
    List.iter
      (fun v ->
         let root = Pacor_graphs.Union_find.find uf (rank v) in
         let existing = Option.value ~default:[] (Hashtbl.find_opt by_root root) in
         Hashtbl.replace by_root root (v :: existing))
      synced;
    let clusters =
      Hashtbl.fold (fun _ vs acc -> List.sort Int.compare vs :: acc) by_root []
      |> List.filter (fun vs -> List.length vs >= 2)
      |> List.sort compare
    in
    (* Compatibility inside each cluster. *)
    let incompatible =
      List.find_opt
        (fun vs ->
           let seqs = List.map (sequence_of t) vs in
           let rec pairwise = function
             | [] -> false
             | s :: rest ->
               List.exists (fun s' -> not (Activation.compatible s s')) rest
               || pairwise rest
           in
           pairwise seqs)
        clusters
    in
    (match incompatible with
     | Some vs ->
       Error
         (Printf.sprintf "sync cluster {%s} contains incompatible activation sequences"
            (String.concat ", " (List.map string_of_int vs)))
     | None -> Ok clusters)

let to_valves t ~positions =
  List.map
    (fun (id, sequence) -> Valve.make ~id ~position:(positions id) ~sequence)
    (sequences t)

let lm_clusters t ~valves =
  match sync_clusters t with
  | Error _ as e -> e
  | Ok groups ->
    let find id = List.find_opt (fun (v : Valve.t) -> v.id = id) valves in
    let rec build cid = function
      | [] -> Ok []
      | group :: rest ->
        let members = List.filter_map find group in
        if List.length members <> List.length group then
          Error "sync cluster references a valve that was not placed"
        else
          (match Cluster.make ~id:cid ~length_matched:true members with
           | Error e -> Error e
           | Ok c ->
             (match build (cid + 1) rest with
              | Ok cs -> Ok (c :: cs)
              | Error _ as e -> e))
    in
    build 0 groups

let pp ppf t =
  Format.fprintf ppf "schedule: %d phases, %d steps, %d valves" (List.length t.phases)
    (total_steps t) (List.length t.valves)
