open Pacor_geom
open Pacor_dme

type solver = Exact | Greedy | Local_search | Mwcp_clique

type config = {
  lambda : float;
  solver : solver;
}

let default_config = { lambda = 0.1; solver = Exact }

(* Eq. (4): overlap of the two edges' bounding boxes, normalised by the
   smaller box. Eq. (3) sums it over all cross pairs. *)
let edge_overlap (a1, a2) (b1, b2) =
  let ba = Rect.of_points a1 a2 and bb = Rect.of_points b1 b2 in
  let ov = Rect.overlap_cells ba bb in
  if ov = 0 then 0.0
  else float_of_int ov /. float_of_int (min (Rect.cells ba) (Rect.cells bb))

let overlap_cost ca cb =
  let ea = Candidate.edge_ends ca and eb = Candidate.edge_ends cb in
  List.fold_left
    (fun acc e1 -> List.fold_left (fun a e2 -> a +. edge_overlap e1 e2) acc eb)
    0.0 ea

let max_mismatch per_cluster =
  List.fold_left
    (fun acc cands ->
       List.fold_left (fun a (c : Candidate.t) -> max a c.mismatch) acc cands)
    0 per_cluster

let mismatch_cost per_cluster (c : Candidate.t) =
  let m = max_mismatch per_cluster in
  if m = 0 then 0.0 else float_of_int c.mismatch /. float_of_int m

type selection = {
  chosen : Candidate.t list;
  objective : float;
}

(* MWCP weights: node weight Cm = -lambda * normalised mismatch (Eq. 2),
   edge weight Co = -(1-lambda) * overlap (Eq. 3). *)
let node_weight ~lambda ~norm (c : Candidate.t) =
  if norm = 0 then 0.0 else -.lambda *. (float_of_int c.mismatch /. float_of_int norm)

let pair_weight ~lambda ca cb = -.(1.0 -. lambda) *. overlap_cost ca cb

let selection_weight ~lambda per_cluster chosen =
  let norm = max_mismatch per_cluster in
  let nodes = List.fold_left (fun a c -> a +. node_weight ~lambda ~norm c) 0.0 chosen in
  let rec pairs acc = function
    | [] -> acc
    | c :: rest ->
      pairs (List.fold_left (fun a d -> a +. pair_weight ~lambda c d) acc rest) rest
  in
  nodes +. pairs 0.0 chosen

(* Precomputed instance: candidates are flattened to global indices so the
   solvers never recompute geometric costs (the overlap evaluation is the
   expensive part; branch and bound visits each pair many times). *)
type instance = {
  clusters : int array array;   (* per cluster: global candidate indices *)
  cand : Candidate.t array;     (* by global index *)
  cluster_of : int array;
  node_w : float array;
  pair_w : float array array;   (* 0 within a cluster, symmetric *)
}

let build_instance ~lambda per_cluster =
  let norm = max_mismatch per_cluster in
  let cand = Array.of_list (List.concat per_cluster) in
  let total = Array.length cand in
  let cluster_of = Array.make total 0 in
  let clusters =
    let next = ref 0 in
    Array.of_list
      (List.mapi
         (fun ci cands ->
            Array.of_list
              (List.map
                 (fun _ ->
                    let g = !next in
                    incr next;
                    cluster_of.(g) <- ci;
                    g)
                 cands))
         per_cluster)
  in
  let node_w = Array.map (node_weight ~lambda ~norm) cand in
  let pair_w = Array.make_matrix total total 0.0 in
  for i = 0 to total - 1 do
    for j = i + 1 to total - 1 do
      if cluster_of.(i) <> cluster_of.(j) then begin
        let w = pair_weight ~lambda cand.(i) cand.(j) in
        pair_w.(i).(j) <- w;
        pair_w.(j).(i) <- w
      end
    done
  done;
  { clusters; cand; cluster_of; node_w; pair_w }

let greedy inst =
  let n = Array.length inst.clusters in
  let chosen = Array.make n (-1) in
  for i = 0 to n - 1 do
    let marginal g =
      let w = ref inst.node_w.(g) in
      for j = 0 to i - 1 do
        w := !w +. inst.pair_w.(g).(chosen.(j))
      done;
      !w
    in
    let best = ref inst.clusters.(i).(0) and best_w = ref (marginal inst.clusters.(i).(0)) in
    Array.iter
      (fun g ->
         let w = marginal g in
         if w > !best_w then begin
           best := g;
           best_w := w
         end)
      inst.clusters.(i);
    chosen.(i) <- !best
  done;
  chosen

let local_search inst start =
  let n = Array.length inst.clusters in
  let chosen = Array.copy start in
  let weight_with i g =
    let w = ref inst.node_w.(g) in
    for j = 0 to n - 1 do
      if j <> i then w := !w +. inst.pair_w.(g).(chosen.(j))
    done;
    !w
  in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 100 do
    improved := false;
    incr rounds;
    for i = 0 to n - 1 do
      let current = weight_with i chosen.(i) in
      Array.iter
        (fun g ->
           if weight_with i g > current +. 1e-12 then begin
             chosen.(i) <- g;
             improved := true
           end)
        inst.clusters.(i)
    done
  done;
  chosen

let exact ?sched inst =
  let n = Array.length inst.clusters in
  (* All weights are <= 0; the best a suffix can add is its max node
     weights, ignoring overlaps — admissible since overlaps only subtract. *)
  let best_suffix =
    Array.map
      (fun cands -> Array.fold_left (fun a g -> max a inst.node_w.(g)) neg_infinity cands)
      inst.clusters
  in
  let suffix_bound = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix_bound.(i) <- suffix_bound.(i + 1) +. best_suffix.(i)
  done;
  (* Seed with the greedy solution so the plateau of zero-cost selections
     prunes immediately. *)
  let seed = greedy inst in
  let seed_w =
    let w = ref 0.0 in
    for i = 0 to n - 1 do
      w := !w +. inst.node_w.(seed.(i));
      for j = 0 to i - 1 do
        w := !w +. inst.pair_w.(seed.(i)).(seed.(j))
      done
    done;
    !w
  in
  let best = ref (Array.copy seed) and best_w = ref seed_w in
  (* One top-level branch per candidate of cluster 0, explored depth-first
     against [best]/[best_w]. [leaf_max], when given, observes the value of
     every leaf reached (used by the parallel merge's skip bound); it never
     influences the search. *)
  let explore ~chosen ~best ~best_w ~leaf_max g0 =
    let rec go i acc_w =
      if i = n then begin
        (match leaf_max with
         | Some r -> if acc_w > !r then r := acc_w
         | None -> ());
        if acc_w > !best_w then begin
          best_w := acc_w;
          best := Array.copy chosen
        end
      end
      else if acc_w +. suffix_bound.(i) > !best_w +. 1e-12 then
        Array.iter
          (fun g ->
             let w = ref inst.node_w.(g) in
             for j = 0 to i - 1 do
               w := !w +. inst.pair_w.(g).(chosen.(j))
             done;
             chosen.(i) <- g;
             go (i + 1) (acc_w +. !w))
          inst.clusters.(i)
    in
    chosen.(0) <- g0;
    go 1 inst.node_w.(g0)
  in
  if n > 0 && 0.0 +. suffix_bound.(0) > !best_w +. 1e-12 then begin
    let branches = inst.clusters.(0) in
    let nb = Array.length branches in
    let run_seq () =
      let chosen = Array.make n (-1) in
      Array.iter (fun g -> explore ~chosen ~best ~best_w ~leaf_max:None g) branches
    in
    match sched with
    | None -> run_seq ()
    | Some _ when nb < 2 -> run_seq ()
    | Some sched ->
      (* Speculative parallel branches: each runs against a private copy of
         the seed incumbent, then an ordered merge reconstructs exactly the
         sequential result. Branch k's speculative run is {e the} sequential
         run whenever the incumbent is still the seed when the merge reaches
         it, so its outcome is adopted verbatim. Once some earlier branch
         improved the incumbent, branch k's speculation used a weaker prune
         bound than sequential would have — but every leaf it could not see
         is bounded by [max seed_w leaf_max +. 1e-12], so when even that
         cannot beat the live incumbent the branch provably contributes
         nothing and is skipped; otherwise it re-runs sequentially against
         the live incumbent. Adopt, skip and re-run all reproduce the
         sequential incumbent bit-for-bit, in branch order. *)
      let results = Array.make nb None in
      Pacor_sched.Sched.parallel_for sched ~n:nb (fun k ->
        let chosen = Array.make n (-1) in
        let lb = ref (Array.copy seed) in
        let lw = ref seed_w in
        let lmax = ref neg_infinity in
        explore ~chosen ~best:lb ~best_w:lw ~leaf_max:(Some lmax) branches.(k);
        results.(k) <- Some (!lb, !lw, !lmax));
      let chosen = Array.make n (-1) in
      Array.iteri
        (fun k r ->
           let lb, lw, lmax = Option.get r in
           if !best_w = seed_w then begin
             if lw > seed_w then begin
               best_w := lw;
               best := lb
             end
           end
           else if lmax +. 1e-12 <= !best_w && seed_w +. 1e-12 <= !best_w then
             ()
           else explore ~chosen ~best ~best_w ~leaf_max:None branches.(k))
        results
  end;
  !best

(* The paper's literal formulation: one graph node per candidate, edges
   between candidates of different clusters, maximum weight clique. A large
   uniform node bonus M makes bigger cliques always dominate, so the
   optimum covers every cluster (the graph is complete multipartite); the
   remaining weight is exactly the selection objective. *)
let mwcp_clique inst =
  let total = Array.length inst.cand in
  let graph =
    { Pacor_graphs.Clique.n = total;
      adjacent = (fun i j -> i <> j && inst.cluster_of.(i) <> inst.cluster_of.(j)) }
  in
  (* M dominates any achievable |objective|: costs are sums of at most
     total^2 terms each bounded by 1 in absolute value. *)
  let big = float_of_int ((total * total) + 1) in
  let weighted =
    { Pacor_graphs.Clique.graph;
      node_weight = (fun i -> big +. inst.node_w.(i));
      edge_weight = (fun i j -> inst.pair_w.(i).(j)) }
  in
  let clique, _w = Pacor_graphs.Clique.max_weight_clique weighted in
  (* One node per cluster, in cluster order. *)
  let by_cluster = Array.make (Array.length inst.clusters) (-1) in
  List.iter (fun g -> by_cluster.(inst.cluster_of.(g)) <- g) clique;
  by_cluster

let select ?sched ?(config = default_config) per_cluster =
  if List.exists (fun cands -> cands = []) per_cluster then
    Error "a cluster has no candidate trees"
  else if per_cluster = [] then Ok { chosen = []; objective = 0.0 }
  else begin
    let inst = build_instance ~lambda:config.lambda per_cluster in
    let chosen_idx =
      match config.solver with
      | Greedy -> greedy inst
      | Local_search -> local_search inst (greedy inst)
      | Exact -> exact ?sched inst
      | Mwcp_clique -> mwcp_clique inst
    in
    let chosen = Array.to_list (Array.map (fun g -> inst.cand.(g)) chosen_idx) in
    Ok { chosen; objective = selection_weight ~lambda:config.lambda per_cluster chosen }
  end
