(** Candidate Steiner tree selection (Sec. 4.2).

    One candidate tree must be chosen per length-matched cluster,
    maximising the MWCP objective: node weights are the length-mismatch
    costs [Cm] (Eq. 2) and edge weights between candidates of different
    clusters are the overlap costs [Co] (Eqs. 3–4); both are non-positive,
    so the optimum is the selection with the least mismatch and the fewest
    expected routing conflicts.

    Because every pair of candidates from different clusters is connected,
    a clique that covers all clusters is exactly a one-candidate-per-cluster
    selection; we solve that selection problem directly. Three solvers
    mirror the paper's three implementations:

    - [Exact]: branch and bound with an admissible remaining-cost bound —
      the stand-in for the paper's Gurobi ILP (optimal; the instance sizes
      of the flow are tiny);
    - [Greedy]: clusters in input order, each picking the candidate with
      the best marginal cost against choices already made (the "graph-based
      algorithm");
    - [Local_search]: greedy start, then single-cluster exchange moves to a
      local optimum (the unconstrained-quadratic-programming analogue);
    - [Mwcp_clique]: the paper's literal formulation — one graph node per
      candidate, edges between different clusters' candidates, maximum
      weight clique via {!Pacor_graphs.Clique} (a large uniform node bonus
      forces full cluster coverage). Optimal, like [Exact]; used to
      cross-check it. *)

open Pacor_dme

type solver = Exact | Greedy | Local_search | Mwcp_clique

type config = {
  lambda : float;    (** weight of mismatch vs overlap, paper default 0.1 *)
  solver : solver;
}

val default_config : config
(** lambda = 0.1, Exact. *)

val overlap_cost : Candidate.t -> Candidate.t -> float
(** Eq. (3)–(4) without the [-(1-lambda)] factor: summed bounding-box
    overlap ratio over all edge pairs of the two trees. Symmetric, >= 0. *)

val mismatch_cost : Candidate.t list list -> Candidate.t -> float
(** Eq. (2) without the [-lambda] factor: this candidate's mismatch
    normalised by the largest mismatch over {e all} clusters' candidates
    (0 when every candidate matches perfectly). *)

type selection = {
  chosen : Candidate.t list;   (** one per cluster, input order *)
  objective : float;           (** MWCP weight of the selection (<= 0) *)
}

val select :
  ?sched:Pacor_sched.Sched.t ->
  ?config:config ->
  Candidate.t list list ->
  (selection, string) result
(** [select per_cluster_candidates] picks one candidate per inner list.
    Errors when some cluster has no candidates. Deterministic: with
    [sched], the [Exact] solver explores its top-level branch-and-bound
    branches speculatively in parallel and merges them in branch order
    (adopt / provably-no-better skip / sequential re-run), which
    reproduces the sequential incumbent bit-for-bit. Other solvers
    ignore [sched]. *)

val selection_weight : lambda:float -> Candidate.t list list -> Candidate.t list -> float
(** Objective value of an arbitrary full selection (used by tests to verify
    optimality of [Exact] against brute force). *)
