(** The final routing solution and its Table-2 statistics, plus an
    independent design-rule validator used by tests and the CLI. *)

open Pacor_valve

type routed_cluster = {
  routed : Routed.t;
  escape : Pacor_flow.Escape.routed option;
  lengths : (Valve.id * int) list;
      (** full channel length valve -> control pin (internal + escape);
          only populated for length-matched shapes *)
  matched : bool;   (** length-matched within delta (always false for
                        ordinary routes) *)
}

type stage_outcome =
  | Completed      (** the stage ran to its normal fixpoint *)
  | Degraded of string
      (** the stage fell back or stopped early; the string names the cause
          (e.g. ["expansions"], ["iterations"], ["skipped: deadline"]) *)
  | Timed_out      (** the wall-clock deadline expired during this stage *)

type t = {
  problem : Problem.t;
  config : Config.t;
  clusters : routed_cluster list;
  initial_multi_clusters : int;
      (** "#Clusters" of Table 2: clusters with >= 2 valves after the
          initial valve-clustering stage *)
  runtime_s : float;
  stage_seconds : (string * float) list;
      (** per-stage wall-clock time, in flow order (clustering, lm-routing,
          plain-routing, escape, detour, rematch) *)
  stage_search : (string * Pacor_route.Search_stats.snapshot) list;
      (** per-stage search-workspace counters, same order and labels as
          [stage_seconds]; zero snapshots for stages that run no grid
          search (e.g. clustering) *)
  stage_outcomes : (string * stage_outcome) list;
      (** same order and labels as [stage_seconds]; anything other than
          [Completed] means the configured {!Config.t.limits} tripped, so
          budget exhaustion stays distinguishable from both structural
          [Error]s and plain congestion *)
  budget_exhausted : Pacor_route.Budget.reason option;
      (** the first budget limit that tripped during the run, if any *)
}

type stats = {
  clusters : int;            (** initial multi-valve clusters *)
  matched_clusters : int;
  matched_length : int;      (** total channel length of matched clusters *)
  total_length : int;        (** all channels, internal + escape *)
  completion : float;        (** routed valves / valves *)
  runtime_s : float;
}

val cluster_total_length : routed_cluster -> int
val stats : t -> stats

val validate : t -> (unit, string list) result
(** Re-checks the solution from scratch:
    - every path cell is in bounds and off static obstacles;
    - channels of different clusters are vertex-disjoint;
    - escape channels are vertex-disjoint from everything foreign;
    - every escape ends on a distinct problem pin;
    - every valve reaches a pin (100 % completion) — reported as an error
      string, not an exception, since congested instances may fail;
    - every cluster marked [matched] really has length spread <= delta;
    - valves sharing a pin are pairwise compatible. *)

val degraded : t -> bool
(** True when any stage outcome is not [Completed]. *)

val pp_stage_outcome : Format.formatter -> stage_outcome -> unit

val pp_outcomes : Format.formatter -> t -> unit
(** One line: either "all stages completed" or the exhaustion reason plus
    the non-completed stages. *)

val pp_stats : Format.formatter -> stats -> unit
