open Pacor_geom
open Pacor_grid
open Pacor_valve

type t = {
  name : string;
  grid : Routing_grid.t;
  rules : Design_rules.t;
  valves : Valve.t list;
  lm_clusters : Cluster.t list;
  pins : Point.t list;
  delta : int;
}

let rec first_duplicate compare = function
  | [] | [ _ ] -> None
  | a :: (b :: _ as rest) -> if compare a b = 0 then Some a else first_duplicate compare rest

let create ?(name = "unnamed") ?(rules = Design_rules.default) ~grid ~valves
    ?(lm_clusters = []) ~pins ?(delta = 1) () =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if valves = [] then err "no valves"
  else if delta < 0 then err "negative delta"
  else begin
    let ids = List.sort Int.compare (List.map (fun (v : Valve.t) -> v.id) valves) in
    match first_duplicate Int.compare ids with
    | Some id -> err "duplicate valve id %d" id
    | None ->
      let positions =
        List.sort Point.compare (List.map (fun (v : Valve.t) -> v.position) valves)
      in
      (match first_duplicate Point.compare positions with
       | Some p -> err "two valves share position %a" Point.pp p
       | None ->
         let bad_valve =
           List.find_opt
             (fun (v : Valve.t) ->
                (not (Routing_grid.in_bounds grid v.position))
                || Routing_grid.blocked grid v.position)
             valves
         in
         (match bad_valve with
          | Some v -> err "valve %d sits on a blocked or out-of-bounds cell" v.id
          | None ->
            let valve_cells =
              Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) valves)
            in
            let bad_pin =
              List.find_opt
                (fun p ->
                   (not (Routing_grid.on_boundary grid p))
                   || Routing_grid.blocked grid p
                   || Point.Set.mem p valve_cells)
                pins
            in
            (match bad_pin with
             | Some p -> err "pin %a is not a free boundary cell" Point.pp p
             | None ->
               (match first_duplicate Point.compare (List.sort Point.compare pins) with
                | Some p -> err "duplicate pin %a" Point.pp p
                | None ->
                  if List.length pins < List.length valves then
                    err "fewer pins (%d) than valves (%d)" (List.length pins)
                      (List.length valves)
                  else begin
                    let known = List.map (fun (v : Valve.t) -> v.id) valves in
                    let bad_seed =
                      List.find_opt
                        (fun (c : Cluster.t) ->
                           (not c.length_matched)
                           || List.exists
                                (fun id -> not (List.mem id known))
                                (Cluster.valve_ids c))
                        lm_clusters
                    in
                    match bad_seed with
                    | Some c ->
                      err "seed cluster %d is not a valid length-matched cluster" c.id
                    | None ->
                      Ok { name; grid; rules; valves; lm_clusters; pins; delta }
                  end))))
  end

let create_exn ?name ?rules ~grid ~valves ?lm_clusters ~pins ?delta () =
  match create ?name ?rules ~grid ~valves ?lm_clusters ~pins ?delta () with
  | Ok t -> t
  | Error msg -> invalid_arg ("Problem.create: " ^ msg)

let valve_count t = List.length t.valves
let pin_count t = List.length t.pins
let obstacle_count t = Obstacle_map.blocked_count (Routing_grid.obstacles t.grid)
let find_valve t id = List.find_opt (fun (v : Valve.t) -> v.id = id) t.valves

let pp_summary ppf t =
  Format.fprintf ppf "%s: %dx%d grid, %d valves, %d pins, %d obstacles, delta=%d" t.name
    (Routing_grid.width t.grid) (Routing_grid.height t.grid) (valve_count t) (pin_count t)
    (obstacle_count t) t.delta

let with_delta t delta =
  if delta < 0 then Error "negative delta" else Ok { t with delta }

(* Design-loop deltas (the serving layer's edit operations). Each one
   rebuilds the instance through [create] so the full invariant set of a
   fresh problem is re-checked, and each is a pure function — the input
   instance is never mutated, so a daemon can keep serving the old version
   if the edit turns out to be invalid. *)

let move_valve t id pos =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match find_valve t id with
  | None -> err "move_valve: unknown valve id %d" id
  | Some v when Point.equal v.position pos -> Ok t
  | Some _ ->
    let relocate (w : Valve.t) = if w.id = id then { w with position = pos } else w in
    let valves = List.map relocate t.valves in
    (* Seed clusters embed full valve records, so the moved valve's record
       must be refreshed inside its cluster too. Membership is unchanged and
       sequences are untouched, so only the distinct-position check can newly
       fail — and [Cluster.make] re-checks it. *)
    let rec rebuild = function
      | [] -> Ok []
      | (c : Cluster.t) :: rest ->
        (match
           Cluster.make ~id:c.Cluster.id ~length_matched:c.Cluster.length_matched
             (List.map relocate c.Cluster.valves)
         with
         | Error e -> err "move_valve: cluster %d: %s" c.Cluster.id e
         | Ok c' ->
           (match rebuild rest with
            | Ok cs -> Ok (c' :: cs)
            | Error _ as e -> e))
    in
    (match rebuild t.lm_clusters with
     | Error _ as e -> e
     | Ok lm_clusters ->
       (match
          create ~name:t.name ~rules:t.rules ~grid:t.grid ~valves ~lm_clusters
            ~pins:t.pins ~delta:t.delta ()
        with
        | Ok _ as ok -> ok
        | Error msg -> err "move_valve: %s" msg))

let add_obstacle t p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if not (Routing_grid.in_bounds t.grid p) then
    err "add_obstacle: %a is out of bounds" Point.pp p
  else if Routing_grid.blocked t.grid p then
    err "add_obstacle: %a is already an obstacle" Point.pp p
  else
    match List.find_opt (fun (v : Valve.t) -> Point.equal v.position p) t.valves with
    | Some v -> err "add_obstacle: valve %d stands on %a" v.id Point.pp p
    | None ->
      (* A candidate pin swallowed by the blockage simply disappears, like
         the fault overlay; [create] re-checks that enough pins remain. *)
      let pins = List.filter (fun q -> not (Point.equal q p)) t.pins in
      (match
         create ~name:t.name ~rules:t.rules
           ~grid:(Routing_grid.with_extra_obstacles t.grid [ p ])
           ~valves:t.valves ~lm_clusters:t.lm_clusters ~pins ~delta:t.delta ()
       with
       | Ok _ as ok -> ok
       | Error msg -> err "add_obstacle: %s" msg)

let remove_obstacle t p =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if not (Routing_grid.in_bounds t.grid p) then
    err "remove_obstacle: %a is out of bounds" Point.pp p
  else if Routing_grid.free t.grid p then
    err "remove_obstacle: %a is not an obstacle" Point.pp p
  else
    match
      create ~name:t.name ~rules:t.rules
        ~grid:(Routing_grid.without_obstacles t.grid [ p ])
        ~valves:t.valves ~lm_clusters:t.lm_clusters ~pins:t.pins ~delta:t.delta ()
    with
    | Ok _ as ok -> ok
    | Error msg -> err "remove_obstacle: %s" msg

(* Fault overlay for the online-repair flow: block the faulted cells in the
   static grid, retire the dead valves (stuck valves, plus any valve whose
   cell got blocked), drop pins swallowed by a blockage, and shrink the seed
   clusters to their surviving members.  The result goes back through
   [create] so every invariant of a fresh problem still holds. *)
let with_faults t ~blocked ~dead_valves =
  let module Int_set = Set.Make (Int) in
  let blocked_set = Point.Set.of_list blocked in
  let dead_set = Int_set.of_list dead_valves in
  let is_dead (v : Valve.t) =
    Int_set.mem v.id dead_set || Point.Set.mem v.position blocked_set
  in
  let valves = List.filter (fun v -> not (is_dead v)) t.valves in
  if valves = [] then Error "with_faults: no valves survive the fault set"
  else begin
    let grid =
      if blocked = [] then t.grid else Routing_grid.with_extra_obstacles t.grid blocked
    in
    let pins = List.filter (fun p -> not (Point.Set.mem p blocked_set)) t.pins in
    let alive =
      List.fold_left
        (fun s (v : Valve.t) -> Int_set.add v.id s)
        Int_set.empty valves
    in
    let lm_clusters =
      List.filter_map
        (fun (c : Cluster.t) ->
           match
             List.filter (fun (v : Valve.t) -> Int_set.mem v.id alive) c.Cluster.valves
           with
           | [] -> None
           | members ->
             (match Cluster.make ~id:c.Cluster.id ~length_matched:true members with
              | Ok c -> Some c
              | Error _ -> None))
        t.lm_clusters
    in
    match
      create ~name:t.name ~rules:t.rules ~grid ~valves ~lm_clusters ~pins ~delta:t.delta ()
    with
    | Ok _ as ok -> ok
    | Error msg -> Error ("with_faults: " ^ msg)
  end
