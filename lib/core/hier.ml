(* Hierarchical two-stage routing: tile-level planning and the
   never-worse ladder's certificate.

   The plan is computed once per run, right after clustering: a
   [Tile_graph] coarsens the grid, a geometric pass collects the tiles
   every cluster's internal channels can plausibly need, and the
   [Global_route] flow assigns each cluster's escape to a concrete tile
   corridor. The detailed stages then search only inside the installed
   corridor (plus its one-tile halo) via the workspace mask — each search
   falling back to the whole grid when its corridor starves it, so the
   hierarchy can only remove work, never solutions. *)

open Pacor_geom
open Pacor_grid
open Pacor_valve

type plan = {
  tg : Tile_graph.t;
  cluster_tiles : int list;
  escape_tiles : int list;
  post_tiles : int list;
  escape_mask : Bytes.t;
  post_mask : Bytes.t;
  requests : int;
  assigned : int;
}

(* Round the configured tile edge up to a power of two so the cell->tile
   map stays a shift. *)
let pow2_at_least k =
  let rec go v = if v >= k then v else go (v * 2) in
  go 1

let plan ?alive ?workspace ~config (problem : Problem.t) clusters =
  let grid = problem.Problem.grid in
  let k = pow2_at_least (max 2 config.Config.hier_tile) in
  let tg = Tile_graph.create grid ~k in
  (* A hierarchy over a handful of tiles cannot prune anything the halo
     does not immediately re-admit; run flat instead. *)
  if Tile_graph.tiles_x tg < 3 || Tile_graph.tiles_y tg < 3 then None
  else begin
    let margin = problem.Problem.delta + 2 in
    let cluster_rects =
      List.filter_map
        (fun c ->
          match Cluster.positions c with
          | [] -> None
          | ps -> Some (Rect.inflate (Rect.of_point_list ps) margin))
        clusters
    in
    let cluster_tiles =
      Tile_graph.expand tg
        (List.concat_map (Tile_graph.tiles_of_rect tg) cluster_rects)
    in
    (* Global escape assignment: one flow unit per cluster, from the tiles
       under its valves to any tile holding candidate pins. *)
    let pins_per_tile = Array.make (Tile_graph.tile_count tg) 0 in
    List.iter
      (fun p ->
        if Routing_grid.in_bounds grid p then begin
          let t = Tile_graph.tile_of_point tg p in
          pins_per_tile.(t) <- pins_per_tile.(t) + 1
        end)
      problem.Problem.pins;
    let start_tiles =
      List.filter_map
        (fun c ->
          match Cluster.positions c with
          | [] -> None
          | ps -> Some (Tile_graph.tiles_of_rect tg (Rect.of_point_list ps)))
        clusters
    in
    let assigned =
      Pacor_flow.Global_route.assign ?alive ?workspace tg ~pins_per_tile ~start_tiles
    in
    (* The escape corridor is deliberately NARROW — the assigned tile
       chains plus a haloed ring around each cluster's start tiles, not
       the cluster bounding boxes. The escape flow network is built from
       exactly these tiles, so its size (and the 0-1-BFS work per
       augmentation) scales with corridor area rather than chip area.
       Requests the global flow could not place (congestion or pins
       unreachable at tile granularity) contribute only their start tiles
       and rely on the escape solver's staged fallback. *)
    let escape_tiles =
      let acc = ref (List.concat start_tiles) in
      Array.iter
        (function
          | Some tiles -> acc := List.rev_append tiles !acc
          | None -> ())
        assigned;
      List.sort_uniq compare !acc
    in
    (* The workspace mask for the escape stage onwards: rip-up re-routes,
       detouring and rematching may travel anywhere a cluster or an escape
       plausibly reaches. *)
    let post_tiles =
      Tile_graph.expand tg (List.rev_append cluster_tiles escape_tiles)
    in
    let escape_mask = Tile_graph.cell_mask tg escape_tiles in
    let post_mask = Tile_graph.cell_mask tg post_tiles in
    let assigned_count =
      Array.fold_left
        (fun acc c -> if c <> None then acc + 1 else acc)
        0 assigned
    in
    Some
      { tg; cluster_tiles; escape_tiles; post_tiles; escape_mask; post_mask;
        requests = Array.length assigned; assigned = assigned_count }
  end

let install ws plan tiles =
  Pacor_route.Workspace.corridor_install ws
    ~width:(Tile_graph.grid_width plan.tg)
    ~tiles_x:(Tile_graph.tiles_x plan.tg)
    ~tile_count:(Tile_graph.tile_count plan.tg)
    ~shift:(Tile_graph.shift plan.tg)
    tiles

let install_detail ws plan = install ws plan plan.cluster_tiles
let install_post ws plan = install ws plan plan.post_tiles

let escape_predicate ws plan i =
  if Tile_graph.mask_mem plan.tg plan.escape_mask i then true
  else begin
    Pacor_route.Workspace.corridor_note_clip ws;
    false
  end

let post_predicate ws plan i =
  if Tile_graph.mask_mem plan.tg plan.post_mask i then true
  else begin
    Pacor_route.Workspace.corridor_note_clip ws;
    false
  end

(* -- Certificate -------------------------------------------------------- *)

let rect_distance (p : Point.t) (r : Rect.t) =
  let dx = max 0 (max (r.Rect.x0 - p.x) (p.x - r.Rect.x1)) in
  let dy = max 0 (max (r.Rect.y0 - p.y) (p.y - r.Rect.y1)) in
  dx + dy

(* Lower bound on the escape length any routing of this cluster's chosen
   topology can achieve: the channels of a Manhattan-minimal routing stay
   inside their edges' bounding boxes, an escape starts on a channel (or
   valve) cell, so its length is at least the distance from its pin to the
   nearest box — minimised over every candidate pin since the certificate
   may not assume flat picks the same one. A routing that pushes a channel
   [d] cells outside its box to get closer to a pin pays at least [2d]
   internal length for at most [d] of escape gain, so the bound holds for
   non-minimal channels too. *)
let escape_lb ~pins (r : Routed.t) =
  let rects =
    List.map (fun p -> Rect.of_points (Path.source p) (Path.target p)) r.Routed.paths
    @ List.map (fun v -> Rect.of_points v v) (Cluster.positions r.Routed.cluster)
  in
  match rects with
  | [] -> 1
  | _ ->
    let best = ref max_int in
    List.iter
      (fun pin ->
        List.iter (fun rect -> best := min !best (rect_distance pin rect)) rects)
      pins;
    max 1 !best

let certify_failure (sol : Solution.t) =
  let pins = sol.Solution.problem.Problem.pins in
  if sol.Solution.budget_exhausted <> None then Some "budget exhausted"
  else if
    not
      (List.for_all
         (fun (_, o) -> o = Solution.Completed)
         sol.Solution.stage_outcomes)
  then Some "a stage degraded"
  else if
    (* Every cluster escaped: the routed-valve count is at its maximum. *)
    not
      (List.for_all (fun (c : Solution.routed_cluster) -> c.escape <> None)
         sol.Solution.clusters)
  then Some "a cluster failed to escape"
  else if
    (* No demotion or declustering: every initially multi-valve cluster is
       still routed under the length-matching regime, and matched. A flat
       run can therefore at best tie the matched count. *)
    List.length
      (List.filter
         (fun (c : Solution.routed_cluster) ->
           Routed.is_length_matched_shape c.routed && c.matched)
         sol.Solution.clusters)
    <> sol.Solution.initial_multi_clusters
  then Some "a multi-valve cluster was demoted or left unmatched"
  else if
    not
      (List.for_all
         (fun (c : Solution.routed_cluster) ->
           (* Every internal channel at the Manhattan minimum of its
              endpoints. *)
           List.for_all
             (fun p ->
               Path.length p = Point.manhattan (Path.source p) (Path.target p))
             c.routed.Routed.paths)
         sol.Solution.clusters)
  then Some "an internal channel exceeds its Manhattan minimum"
  else if
    not
      (List.for_all
         (fun (c : Solution.routed_cluster) ->
           match c.escape with
           | None -> false
           | Some e ->
             Path.length e.Pacor_flow.Escape.path <= escape_lb ~pins c.routed)
         sol.Solution.clusters)
  then Some "an escape exceeds its pin-to-channel-box lower bound"
  else None

let certified sol = certify_failure sol = None

let score (sol : Solution.t) =
  let routed_valves =
    List.fold_left
      (fun acc (c : Solution.routed_cluster) ->
        if c.escape <> None then acc + Cluster.size c.routed.Routed.cluster else acc)
      0 sol.Solution.clusters
  in
  let matched =
    List.length (List.filter (fun (c : Solution.routed_cluster) -> c.matched) sol.Solution.clusters)
  in
  let total_length =
    List.fold_left
      (fun acc c -> acc + Solution.cluster_total_length c)
      0 sol.Solution.clusters
  in
  (routed_valves, matched, -total_length)
