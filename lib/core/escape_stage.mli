(** Stage "Escape routing for control pins" (Sec. 5): one global min-cost
    flow connecting every routed cluster to a distinct control pin. *)

open Pacor_geom
open Pacor_grid

type assignment = {
  routed : Routed.t;
  escape : Pacor_flow.Escape.routed option;  (** [None] = escape failed *)
}

type outcome = {
  assignments : assignment list;   (** input order *)
  failed_clusters : int list;      (** cluster ids without a pin *)
  escape_length : int;
}

val run :
  ?alive:(unit -> bool) ->
  ?sched:Pacor_sched.Sched.t ->
  ?workspace:Pacor_route.Workspace.t ->
  ?corridor:(int -> bool) ->
  ?corridor_fallback:(int -> bool) ->
  grid:Routing_grid.t ->
  pins:Point.t list ->
  Routed.t list ->
  (outcome, string) result
(** Claims of all routed clusters become non-transit cells; each cluster's
    start cells follow Sec. 5's three cases (see {!Routed.start_cells}).
    [alive] is polled between flow augmentations (see
    {!Pacor_flow.Escape.route}); a cancelled solve reports the clusters
    escaped so far and lists the rest in [failed_clusters]. [workspace]
    backs the flow solver's augmentation searches (and charges its
    budget), like it backs the A* stages. [corridor] confines transit
    cells in hierarchical mode; on any failure the solver escalates first
    to [corridor_fallback] (a wider region) and then to an unconfined
    re-solve (see {!Pacor_flow.Escape.route}). *)

val single :
  ?workspace:Pacor_route.Workspace.t ->
  grid:Routing_grid.t ->
  claimed:Point.Set.t ->
  pins:Point.t list ->
  start_cells:Point.t list ->
  unit ->
  Pacor_flow.Escape.routed option
(** One cluster's escape in isolation (the rematch pass): a multi-source A*
    from the cluster's start cells onto the free pins, avoiding [claimed]
    and all boundary transit. [idx] of the result is 0 — the caller knows
    which cluster it asked for. *)
