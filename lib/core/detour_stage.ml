open Pacor_geom
open Pacor_grid
open Pacor_dme

type outcome = {
  updated : Routed.t list;
  matched_ids : int list;
  unmatched_ids : int list;
}

(* Detour one tree-routed cluster. [usable_base] already excludes static
   obstacles, grid bounds and everything outside this cluster. Returns the
   (possibly updated) route and whether it now satisfies delta. *)
let detour_tree ?workspace ~grid ~usable_base ~delta ~theta (original : Routed.t) =
  let candidate, _ =
    match original.shape with
    | Some (Routed.Tree { candidate; edge_paths }) -> (candidate, edge_paths)
    | Some (Routed.Pair _) | None -> invalid_arg "detour_tree: not a tree"
  in
  let anchor_lengths (r : Routed.t) =
    Array.of_list (List.map snd (Routed.escape_anchor_lengths r))
  in
  let edge_paths_of (r : Routed.t) =
    match r.shape with
    | Some (Routed.Tree { edge_paths; _ }) -> edge_paths
    | Some (Routed.Pair _) | None -> assert false
  in
  (* Lengthen the leg [child] of [r] to at least [target] edges. *)
  let lengthen_leg (r : Routed.t) child target =
    match List.assoc_opt child (edge_paths_of r) with
    | None -> None
    | Some leg ->
      let leg_cells = Point.Set.of_list (Path.points leg) in
      let own_others = Point.Set.diff r.claimed leg_cells in
      let usable p = usable_base p && not (Point.Set.mem p own_others) in
      (match Pacor_route.Detour.lengthen leg ~target ~usable with
       | Some path -> Some (Routed.with_edge_path r ~child path)
       | None ->
         (* Bumps ran out of room: fall back to the paper's minimum-length
            bounded rerouting of the whole leg. *)
         (* The fallback rarely succeeds when bumps found no room, so its
            search budget is capped — an uncapped budget dominates the
            whole stage's runtime on large chips. *)
         (match
            Pacor_route.Bounded_astar.search ?workspace ~grid
              ~usable:(fun i -> usable (Routing_grid.point_of_index grid i))
              ~pop_budget:20_000
              ~source:(Path.source leg) ~target:(Path.target leg) ~min_length:target ()
          with
          | Some path -> Some (Routed.with_edge_path r ~child path)
          | None -> None))
  in
  (* Sinks in the subtree hanging off [child] — lengthening that leg adds
     to all of their full paths. *)
  let sinks_below child =
    let rec descend acc frontier =
      match frontier with
      | [] -> acc
      | id :: rest ->
        let kids =
          List.filter_map
            (fun (n : Candidate.node) -> if n.parent = Some id then Some n else None)
            candidate.Candidate.nodes
        in
        let acc =
          List.fold_left
            (fun a (n : Candidate.node) ->
               match n.sink with Some s -> s :: a | None -> a)
            acc kids
        in
        descend acc (List.map (fun (n : Candidate.node) -> n.id) kids @ rest)
    in
    match List.find_opt (fun (n : Candidate.node) -> n.id = child) candidate.Candidate.nodes with
    | Some { Candidate.sink = Some s; _ } -> [ s ]
    | Some _ -> descend [] [ child ]
    | None -> []
  in
  let rec loop (r : Routed.t) round =
    let lengths = anchor_lengths r in
    let maxl = Array.fold_left max min_int lengths in
    let shorts =
      Array.to_list lengths
      |> List.mapi (fun i l -> (i, l))
      |> List.filter (fun (_, l) -> l < maxl - delta)
    in
    if shorts = [] then (r, true)
    else if round >= theta then (original, false) (* give up: restore *)
    else begin
      let detoured_this_round = ref [] in
      let rec handle_shorts r = function
        | [] -> Some r
        | (sink, len) :: rest ->
          let chain = Candidate.chain_to_root candidate ~sink in
          let need = maxl - delta - len in
          (* Bump insertion moves in steps of two, so this is the amount the
             leg will actually grow by. *)
          let grow = 2 * ((need + 1) / 2) in
          let rec try_legs = function
            | [] -> None
            | (child, _parent) :: more ->
              if List.mem child !detoured_this_round then
                (* A shared leg already grew this round; this full path was
                   lengthened with it (Algorithm 2's Fd check). *)
                Some r
              else begin
                (* Never grow a leg past [maxl] for any sink beneath it —
                   otherwise shared-leg detours escalate maxl forever. *)
                let safe =
                  List.for_all
                    (fun s -> lengths.(s) + grow <= maxl)
                    (sinks_below child)
                in
                if not safe then try_legs more
                else
                  match List.assoc_opt child (edge_paths_of r) with
                  | None -> try_legs more (* zero-length embedded edge *)
                  | Some leg ->
                    let target = Path.length leg + need in
                    (match lengthen_leg r child target with
                     | Some r' ->
                       detoured_this_round := child :: !detoured_this_round;
                       Some r'
                     | None -> try_legs more)
              end
          in
          (match try_legs chain with
           | Some r' -> handle_shorts r' rest
           | None -> None)
      in
      match handle_shorts r shorts with
      | Some r' -> loop r' (round + 1)
      | None -> (original, false) (* restore, per Algorithm 2 *)
    end
  in
  loop original 0

let detour_one ?workspace ~grid ~delta ~theta ~blocked (r : Routed.t) =
  let static = Routing_grid.obstacles grid in
  let usable_base p =
    Routing_grid.in_bounds grid p
    && Obstacle_map.free static p
    && not (Point.Set.mem p blocked)
  in
  detour_tree ?workspace ~grid ~usable_base ~delta ~theta r

let run ?workspace ~grid ~delta ~theta ~blocked routed_list =
  let static = Routing_grid.obstacles grid in
  let global = ref blocked in
  let matched = ref [] and unmatched = ref [] in
  (* Process the worst-mismatched trees first: they need the most detour
     space, and an easy cluster detoured early can consume exactly the
     cells a hard neighbour required. Results are returned in input
     order. *)
  let order =
    List.stable_sort
      (fun (a : Routed.t) (b : Routed.t) ->
         let spread r = Option.value ~default:0 (Routed.spread r) in
         Int.compare (spread b) (spread a))
      routed_list
  in
  let process (r : Routed.t) =
    match r.shape with
    | None -> r
    | Some (Routed.Pair _) ->
      let ok = match Routed.spread r with Some s -> s <= delta | None -> false in
      if ok then matched := r.cluster.Pacor_valve.Cluster.id :: !matched
      else unmatched := r.cluster.Pacor_valve.Cluster.id :: !unmatched;
      r
    | Some (Routed.Tree _) ->
      let others = Point.Set.diff !global r.claimed in
      let usable_base p =
        Routing_grid.in_bounds grid p
        && Obstacle_map.free static p
        && not (Point.Set.mem p others)
      in
      let r', ok = detour_tree ?workspace ~grid ~usable_base ~delta ~theta r in
      global := Point.Set.union others r'.claimed;
      if ok then matched := r'.cluster.Pacor_valve.Cluster.id :: !matched
      else unmatched := r'.cluster.Pacor_valve.Cluster.id :: !unmatched;
      r'
  in
  let results : (int, Routed.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Routed.t) ->
       Hashtbl.replace results r.cluster.Pacor_valve.Cluster.id (process r))
    order;
  let updated =
    List.map
      (fun (r : Routed.t) ->
         match Hashtbl.find_opt results r.cluster.Pacor_valve.Cluster.id with
         | Some r' -> r'
         | None -> r)
      routed_list
  in
  { updated; matched_ids = List.rev !matched; unmatched_ids = List.rev !unmatched }
