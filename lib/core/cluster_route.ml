open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor_dme

type outcome = {
  routed : Routed.t list;
  demoted : Cluster.t list;
  iterations : int;
}

let pair_candidate (a : Valve.t) (b : Valve.t) : Candidate.t =
  let d = Point.manhattan a.position b.position in
  {
    root = Point.midpoint a.position b.position;
    nodes =
      [ { id = 0; pos = a.position; parent = None; sink = Some 0 };
        { id = 1; pos = b.position; parent = Some 0; sink = Some 1 } ];
    edges = [ { parent_pos = a.position; child_pos = b.position } ];
    sinks = [| a.position; b.position |];
    (* Lengths are measured from the middle attachment point (Sec. 5), so
       the intrinsic mismatch of a pair is its distance parity. *)
    full_path_lengths = [| d / 2; d - (d / 2) |];
    mismatch = d mod 2;
    total_estimate = d;
  }

let candidates_for ~config ~grid ~usable (cluster : Cluster.t) =
  match cluster.valves with
  | [] -> []
  | [ v ] -> Candidate.enumerate ~grid ~usable [ v.position ]
  | [ a; b ] -> [ pair_candidate a b ]
  | _ :: _ :: _ :: _ ->
    Candidate.enumerate ~grid ~usable
      ~max_candidates:config.Config.max_candidates
      (Cluster.positions cluster)

(* Non-trivial tree edges keyed by child node id. *)
let tree_edges (candidate : Candidate.t) =
  List.filter_map
    (fun (n : Candidate.node) ->
       match n.parent with
       | None -> None
       | Some pid ->
         let ppos = Candidate.node_pos candidate pid in
         if Point.equal ppos n.pos then None else Some (n.id, ppos, n.pos))
    candidate.nodes

let build_routed (cluster : Cluster.t) (candidate : Candidate.t)
    (paths : (int * Path.t) list) =
  match cluster.valves with
  | [ a; b ] ->
    (match paths with
     | [ (_, path) ] -> Routed.make_pair cluster ~a:a.id ~b:b.id ~path
     | _ -> invalid_arg "Cluster_route: pair cluster needs exactly one path")
  | _ -> Routed.make_tree cluster ~candidate ~edge_paths:paths

let route ?workspace ~config ~grid ~valve_cells clusters =
  let lm = List.filter Cluster.needs_matching clusters in
  if lm = [] then { routed = []; demoted = []; iterations = 0 }
  else begin
    let static = Routing_grid.obstacles grid in
    let usable p =
      Obstacle_map.free static p && not (Point.Set.mem p valve_cells)
    in
    (* DME candidate generation is pure per cluster (grid geometry and the
       immutable blockage closure), so with a scheduler the clusters shard
       freely; results land in caller-indexed slots and are partitioned in
       input order, making the parallel run indistinguishable from the
       sequential one. *)
    let per_cluster =
      let arr = Array.of_list lm in
      let ncl = Array.length arr in
      let out = Array.make ncl [] in
      let fill i = out.(i) <- candidates_for ~config ~grid ~usable arr.(i) in
      (match config.Config.sched with
       | Some sched when ncl >= 2 ->
         Pacor_sched.Sched.parallel_for sched ~n:ncl fill
       | Some _ | None ->
         for i = 0 to ncl - 1 do
           fill i
         done);
      Array.to_list (Array.map2 (fun c cands -> (c, cands)) arr out)
    in
    let with_candidates, no_candidates =
      List.partition_map
        (fun (c, cands) ->
           match cands with [] -> Either.Right c | _ -> Either.Left (c, cands))
        per_cluster
    in
    let choose per_cluster =
      match config.Config.variant with
      | Config.Without_selection ->
        (* Ablation: no global selection — first candidate each. *)
        List.map (fun cands -> List.hd cands) per_cluster
      | Config.Full | Config.Detour_first ->
        let sel_config =
          { Pacor_select.Tree_select.lambda = config.Config.lambda;
            solver = config.Config.solver }
        in
        (match
           Pacor_select.Tree_select.select ?sched:config.Config.sched
             ~config:sel_config per_cluster
         with
         | Ok sel -> sel.chosen
         | Error msg -> invalid_arg ("Cluster_route: " ^ msg))
    in
    (* Negotiation obstacles: static blockages plus every valve cell; each
       edge's own endpoints are exempted inside the router. *)
    let obstacles = Obstacle_map.copy static in
    Point.Set.iter (fun p -> Obstacle_map.block obstacles p) valve_cells;
    let rec attempt active demoted iterations =
      match active with
      | [] -> { routed = []; demoted; iterations }
      | _ :: _ ->
        let chosen = choose (List.map snd active) in
        (* Two clusters may have embedded a merging node on the same grid
           cell — their edges would then legally meet there (each edge may
           always reach its own endpoints) and the trees would overlap.
           Resolve collisions by switching the later cluster to another of
           its candidates; demote it if none is collision-free. *)
        let node_cells (c : Candidate.t) =
          Point.Set.of_list (List.map (fun (n : Candidate.node) -> n.pos) c.nodes)
        in
        let fix_collisions chosen =
          let used = ref Point.Set.empty in
          List.map2
            (fun (_, cands) cand ->
               let collides c =
                 not (Point.Set.is_empty (Point.Set.inter (node_cells c) !used))
               in
               let pick =
                 if collides cand then
                   List.find_opt (fun c -> not (collides c)) cands
                 else Some cand
               in
               (match pick with
                | Some c ->
                  used := Point.Set.union !used (node_cells c);
                  Some c
                | None -> None))
            active chosen
        in
        let resolved = fix_collisions chosen in
        let still_active, newly_demoted =
          List.partition_map
            (fun ((cluster, cands), pick) ->
               match pick with
               | Some c -> Left ((cluster, cands), c)
               | None -> Right cluster)
            (List.combine active resolved)
        in
        if newly_demoted <> [] then
          attempt_with_choices still_active
            (demoted @ newly_demoted)
            iterations
        else attempt_with_choices still_active demoted iterations
    and attempt_with_choices pairs_and_choice demoted iterations =
      match pairs_and_choice with
      | [] -> { routed = []; demoted; iterations }
      | _ :: _ ->
        let pairs =
          List.map (fun ((cluster, _cands), cand) -> (cluster, cand)) pairs_and_choice
        in
        (* Every chosen candidate's node cells become blockages for the
           whole batch: otherwise an early path may transit a cell that a
           later edge terminates on (endpoints are exempt from blockage for
           their own search), silently overlapping two clusters. *)
        let batch_obstacles = Obstacle_map.copy obstacles in
        List.iter
          (fun (_, (cand : Candidate.t)) ->
             List.iter
               (fun (n : Candidate.node) -> Obstacle_map.block batch_obstacles n.pos)
               cand.nodes)
          pairs;
        (* Flatten all tree edges, remembering ownership. *)
        let edge_info = ref [] in
        let edges =
          List.concat
            (List.mapi
               (fun cluster_slot (_cluster, candidate) ->
                  List.map
                    (fun (child_id, ppos, cpos) ->
                       let eid = List.length !edge_info in
                       edge_info := (eid, (cluster_slot, child_id)) :: !edge_info;
                       { Pacor_route.Negotiation.edge_id = eid; ends = (ppos, cpos) })
                    (tree_edges candidate))
               pairs)
        in
        let info = !edge_info in
        let result =
          Pacor_route.Negotiation.route ?sched:config.Config.sched ?workspace
            ~config:config.Config.negotiation ~grid ~obstacles:batch_obstacles
            edges
        in
        let iterations = iterations + result.iterations in
        if result.success then begin
          let paths_of slot =
            List.filter_map
              (fun (eid, path) ->
                 match List.assoc_opt eid info with
                 | Some (s, child_id) when s = slot -> Some (child_id, path)
                 | Some _ | None -> None)
              result.paths
          in
          let routed =
            List.mapi
              (fun slot (cluster, candidate) ->
                 build_routed cluster candidate (paths_of slot))
              pairs
          in
          { routed; demoted; iterations }
        end
        else begin
          (* Demote every cluster owning a failed edge and retry with the
             rest (Fig. 2's fallback to MST-based routing). *)
          let routed_ids = List.map fst result.paths in
          let failed_slots =
            List.filter_map
              (fun (eid, (slot, _)) ->
                 if List.mem eid routed_ids then None else Some slot)
              info
            |> List.sort_uniq Int.compare
          in
          (* Edge case: negotiation gave up with all edges individually
             routable but never jointly; demote the largest cluster. *)
          let failed_slots =
            if failed_slots = [] then
              [ fst
                  (List.fold_left
                     (fun (best, best_size) (slot, (c, _)) ->
                        let size = Cluster.size c in
                        if size > best_size then (slot, size) else (best, best_size))
                     (0, -1)
                     (List.mapi (fun i p -> (i, p)) pairs)) ]
            else failed_slots
          in
          let keep, drop =
            List.partition
              (fun (slot, _) -> not (List.mem slot failed_slots))
              (List.mapi (fun i a -> (i, a)) pairs_and_choice)
          in
          attempt
            (List.map (fun (_, (cluster_cands, _)) -> cluster_cands) keep)
            (demoted @ List.map (fun (_, ((c, _), _)) -> c) drop)
            iterations
        end
    in
    let out = attempt with_candidates no_candidates 0 in
    out
  end

let route_single ?workspace ~config ~grid ~obstacles cluster candidate =
  let obstacles = Obstacle_map.copy obstacles in
  List.iter
    (fun (n : Candidate.node) -> Obstacle_map.block obstacles n.pos)
    candidate.Candidate.nodes;
  let tree_edges = tree_edges candidate in
  let edges =
    List.mapi
      (fun i (_, ppos, cpos) -> { Pacor_route.Negotiation.edge_id = i; ends = (ppos, cpos) })
      tree_edges
  in
  (* Child-node ids indexed once by edge slot: [List.nth] per returned path
     is quadratic in tree size and raises a bare [Failure] on a short list,
     whereas a stale edge id should name itself. *)
  let ids = Array.of_list (List.map (fun (child_id, _, _) -> child_id) tree_edges) in
  let result =
    Pacor_route.Negotiation.route ?sched:config.Config.sched ?workspace
      ~config:config.Config.negotiation ~grid ~obstacles edges
  in
  if not result.success then None
  else begin
    let paths =
      List.map
        (fun (i, path) ->
           if i < 0 || i >= Array.length ids then
             invalid_arg
               (Printf.sprintf "Cluster_route.route_single: negotiation returned \
                                unknown edge id %d (have %d edges)"
                  i (Array.length ids));
           (ids.(i), path))
        result.paths
    in
    Some (build_routed cluster candidate paths)
  end
