open Pacor_geom
open Pacor_grid
open Pacor_valve

type routed_cluster = {
  routed : Routed.t;
  escape : Pacor_flow.Escape.routed option;
  lengths : (Valve.id * int) list;
  matched : bool;
}

type stage_outcome =
  | Completed
  | Degraded of string
  | Timed_out

type t = {
  problem : Problem.t;
  config : Config.t;
  clusters : routed_cluster list;
  initial_multi_clusters : int;
  runtime_s : float;
  stage_seconds : (string * float) list;
  stage_search : (string * Pacor_route.Search_stats.snapshot) list;
  stage_outcomes : (string * stage_outcome) list;
  budget_exhausted : Pacor_route.Budget.reason option;
}

let degraded t =
  List.exists (fun (_, o) -> o <> Completed) t.stage_outcomes

let pp_stage_outcome ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Degraded r -> Format.fprintf ppf "degraded (%s)" r
  | Timed_out -> Format.pp_print_string ppf "timed out"

let pp_outcomes ppf t =
  match t.budget_exhausted with
  | None -> Format.pp_print_string ppf "all stages completed"
  | Some reason ->
    Format.fprintf ppf "budget exhausted (%s): %a"
      (Pacor_route.Budget.reason_label reason)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (label, o) ->
            Format.fprintf ppf "%s %a" label pp_stage_outcome o))
      (List.filter (fun (_, o) -> o <> Completed) t.stage_outcomes)

type stats = {
  clusters : int;
  matched_clusters : int;
  matched_length : int;
  total_length : int;
  completion : float;
  runtime_s : float;
}

let escape_length rc =
  match rc.escape with None -> 0 | Some e -> Path.length e.Pacor_flow.Escape.path

let cluster_total_length rc = Routed.internal_length rc.routed + escape_length rc

let stats (t : t) =
  let matched = List.filter (fun rc -> rc.matched) t.clusters in
  let total_valves = Problem.valve_count t.problem in
  let routed_valves =
    List.fold_left
      (fun acc rc ->
         if rc.escape <> None then acc + Cluster.size rc.routed.Routed.cluster else acc)
      0 t.clusters
  in
  {
    clusters = t.initial_multi_clusters;
    matched_clusters = List.length matched;
    matched_length = List.fold_left (fun a rc -> a + cluster_total_length rc) 0 matched;
    total_length = List.fold_left (fun a rc -> a + cluster_total_length rc) 0 t.clusters;
    completion =
      (if total_valves = 0 then 1.0
       else float_of_int routed_valves /. float_of_int total_valves);
    runtime_s = t.runtime_s;
  }

let cluster_cells rc =
  let escape_cells =
    match rc.escape with
    | None -> Point.Set.empty
    | Some e -> Point.Set.of_list (Path.points e.Pacor_flow.Escape.path)
  in
  Point.Set.union rc.routed.Routed.claimed escape_cells

let validate (t : t) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let grid = t.problem.Problem.grid in
  let static = Routing_grid.obstacles grid in
  (* 1. Cells legal. *)
  List.iter
    (fun rc ->
       Point.Set.iter
         (fun p ->
            if not (Routing_grid.in_bounds grid p) then
              err "cluster %d uses out-of-bounds cell %a" rc.routed.Routed.cluster.Cluster.id
                Point.pp p
            else if Obstacle_map.blocked static p then
              err "cluster %d routes over obstacle %a" rc.routed.Routed.cluster.Cluster.id
                Point.pp p)
         (cluster_cells rc))
    t.clusters;
  (* 2. Cross-cluster vertex-disjointness. *)
  let owner : (Point.t, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun rc ->
       let id = rc.routed.Routed.cluster.Cluster.id in
       Point.Set.iter
         (fun p ->
            match Hashtbl.find_opt owner p with
            | Some other when other <> id ->
              err "clusters %d and %d overlap at %a" other id Point.pp p
            | Some _ | None -> Hashtbl.replace owner p id)
         (cluster_cells rc))
    t.clusters;
  (* 3. Escapes end on distinct problem pins. *)
  let used_pins = Hashtbl.create 16 in
  List.iter
    (fun rc ->
       match rc.escape with
       | None -> ()
       | Some e ->
         let pin = e.Pacor_flow.Escape.pin in
         if not (List.exists (Point.equal pin) t.problem.Problem.pins) then
           err "cluster %d escapes to non-pin %a" rc.routed.Routed.cluster.Cluster.id
             Point.pp pin;
         (match Hashtbl.find_opt used_pins pin with
          | Some other ->
            err "pin %a used by clusters %d and %d" Point.pp pin other
              rc.routed.Routed.cluster.Cluster.id
          | None -> Hashtbl.replace used_pins pin rc.routed.Routed.cluster.Cluster.id))
    t.clusters;
  (* 4. Completion. *)
  List.iter
    (fun rc ->
       if rc.escape = None then
         err "cluster %d has no control pin" rc.routed.Routed.cluster.Cluster.id)
    t.clusters;
  let covered =
    List.concat_map (fun rc -> Cluster.valve_ids rc.routed.Routed.cluster) t.clusters
    |> List.sort Int.compare
  in
  let all =
    List.map (fun (v : Valve.t) -> v.id) t.problem.Problem.valves |> List.sort Int.compare
  in
  if covered <> all then err "routed clusters do not cover the valve set exactly";
  (* 5. Matched clusters really match. *)
  List.iter
    (fun rc ->
       if rc.matched then begin
         match Routed.spread rc.routed with
         | Some s when s <= t.problem.Problem.delta -> ()
         | Some s ->
           err "cluster %d marked matched but spread is %d > delta=%d"
             rc.routed.Routed.cluster.Cluster.id s t.problem.Problem.delta
         | None ->
           err "cluster %d marked matched but has no length-matched shape"
             rc.routed.Routed.cluster.Cluster.id
       end)
    t.clusters;
  (* 6. Pin sharing respects compatibility. *)
  List.iter
    (fun rc ->
       if not (Valve.pairwise_compatible rc.routed.Routed.cluster.Cluster.valves) then
         err "cluster %d shares a pin between incompatible valves"
           rc.routed.Routed.cluster.Cluster.id)
    t.clusters;
  match List.rev !errors with [] -> Ok () | es -> Error es

let pp_stats ppf s =
  Format.fprintf ppf
    "clusters=%d matched=%d matched_len=%d total_len=%d completion=%.0f%% runtime=%.2fs"
    s.clusters s.matched_clusters s.matched_length s.total_length (100.0 *. s.completion)
    s.runtime_s
