(** PACOR flow configuration: every tunable the paper names, plus the
    ablation switches used in its Table 2 self-comparison. *)

type variant =
  | Full            (** the complete PACOR flow *)
  | Without_selection
      (** "w/o Sel": skip candidate-tree selection, take each cluster's
          first candidate *)
  | Detour_first
      (** "Detour First": detour for length matching right after the
          negotiation-based routing, skip the final detour stage *)

type hier_mode =
  | Hier_auto  (** hierarchy on grids of at least [hier_threshold] cells *)
  | Hier_on
  | Hier_off

type t = {
  variant : variant;
  lambda : float;        (** mismatch-vs-overlap weight in selection, 0.1 *)
  max_candidates : int;  (** DME candidates per cluster, default 8 *)
  solver : Pacor_select.Tree_select.solver;  (** MWCP solver, default Exact *)
  negotiation : Pacor_route.Negotiation.config;
      (** [b_g] = 1.0, [alpha] = 0.1, [gamma] = 10 *)
  theta : int;           (** detour-stage iteration bound, default 10 *)
  max_ripup_rounds : int;
      (** escape rip-up / decluster rounds, default 10 *)
  limits : Pacor_route.Budget.limits;
      (** search budget per engine run (deadline / expansion cap /
          negotiation-iteration cap); default {!Pacor_route.Budget.no_limits} *)
  verbose : bool;        (** log stage-by-stage progress *)
  hier : hier_mode;      (** hierarchical two-stage routing, default auto *)
  hier_tile : int;
      (** tile edge of the hierarchy's coarsening, a power of two;
          default 8 *)
  hier_threshold : int;
      (** cell count at and above which [Hier_auto] engages the hierarchy;
          default 200_000 — comfortably above every Table 1 chip, so the
          paper corpus runs flat under auto and the hierarchy only pays
          for itself on the scaled family it exists for *)
  sched : Pacor_sched.Sched.t option;
      (** work-stealing scheduler for intra-instance stage sharding
          (DME candidates, selection branch-and-bound, negotiation
          conflict probes, escape subnetworks). [None] (the default)
          keeps every stage sequential. Sharded stages produce
          byte-identical solutions and search stats; the engine gates
          the scheduler off whenever a search budget is armed, because
          a budget trip mid-stage depends on operation interleaving.
          Warning: a config carrying [Some sched] contains mutexes —
          do not compare it structurally. *)
}

val default : t
val make : ?variant:variant -> unit -> t

val hier_mode_name : hier_mode -> string

val hier_mode_of_string : string -> hier_mode option
(** Parses ["auto" | "on" | "off"] (the CLI's [--hier] values). *)

val hier_enabled : t -> cells:int -> bool
(** Whether a run on a [cells]-cell grid uses the hierarchy under this
    configuration. *)

val relax : t -> t
(** One retry step of the batch runner's relaxation policy: budget limits
    scaled by 2x ({!Pacor_route.Budget.relax}), detour bound [theta]
    doubled, rip-up rounds x1.5. The problem itself is untouched, so a
    relaxed retry still answers the same routing question. *)

val variant_name : variant -> string
val pp : Format.formatter -> t -> unit
