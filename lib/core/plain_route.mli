(** Stage "MST-based cluster routing" (Sec. 3): route ordinary clusters —
    those without the length-matching constraint plus any demoted ones —
    and decluster into singletons whatever cannot be routed whole. *)

open Pacor_geom
open Pacor_grid
open Pacor_valve

type outcome = {
  routed : Routed.t list;       (** one entry per surviving cluster *)
  declustered : int;            (** clusters that had to be split *)
}

val route_all :
  ?workspace:Pacor_route.Workspace.t ->
  grid:Routing_grid.t ->
  valve_cells:Point.Set.t ->
  already_claimed:Point.Set.t ->
  fresh_id:(unit -> int) ->
  Cluster.t list ->
  outcome
(** Routes clusters largest-first. Obstacles for each cluster: static
    blockages, [already_claimed] cells (earlier clusters, length-matched
    trees), the claims of clusters routed before it, and the positions of
    all valves outside the cluster. A cluster whose MST cannot be routed is
    split into singletons (which claim just their valve cell and always
    succeed); [fresh_id] mints their cluster ids. *)
