(** Table-2-style reporting: the paper's self-comparison of "w/o Sel",
    "Detour First" and PACOR across designs, plus the published reference
    numbers so paper-vs-measured shape can be checked mechanically. *)

type cell = {
  matched : int;
  matched_length : int;
  total_length : int;
  runtime_s : float;
}

type row = {
  design : string;
  clusters : int;
  without_sel : cell;
  detour_first : cell;
  pacor : cell;
}

val row_of_stats :
  design:string ->
  without_sel:Solution.stats ->
  detour_first:Solution.stats ->
  pacor:Solution.stats ->
  row

val paper_table2 : row list
(** The numbers published in the paper's Table 2 (runtime in the authors'
    environment). Used by EXPERIMENTS.md and the bench harness for
    shape comparison, never for assertions on absolute values. *)

val print_table : Format.formatter -> row list -> unit
(** Renders rows in the paper's column layout, appending the normalised
    "Avg." row (each variant's metric divided by PACOR's, averaged over
    designs — the convention of the paper's last row). *)

val averages : row list -> (float * float * float) * (float * float * float) * (float * float * float) * (float * float * float)
(** Normalised averages per metric group:
    (matched clusters, matched length, total length, runtime), each as
    (w/o Sel, Detour First, PACOR-normalised = 1.0 baseline) ratios. *)

val print_search_stats : Format.formatter -> Solution.t -> unit
(** One line per stage that ran grid searches (label + the workspace's
    counter deltas for that stage) followed by a total line. Backs the
    CLI's [route --verbose] output. *)

val shape_checks : measured:row list -> (string * bool) list
(** The qualitative claims of Sec. 7, evaluated on measured rows:
    - every variant completes all designs (implicit: rows exist);
    - PACOR matches at least as many clusters as "w/o Sel" on every design;
    - on Chip2-like designs (all variants matched everything) the three
      variants tie;
    - summed over designs, PACOR matches the most clusters. *)
