(** A control-layer routing problem instance (Sec. 2).

    Given: valves with coordinates and activation sequences, clusters with
    the length-matching constraint and threshold [delta], feasible control
    pin positions, and design rules (encoded as the routing grid pitch plus
    explicit blockages). *)

open Pacor_geom
open Pacor_grid
open Pacor_valve

type t = private {
  name : string;
  grid : Routing_grid.t;
  rules : Design_rules.t;
  valves : Valve.t list;
  lm_clusters : Cluster.t list;
      (** the length-matched seed clusters [M(V)]; always flagged *)
  pins : Point.t list;   (** candidate control pin cells, free, on boundary *)
  delta : int;           (** length-matching threshold, grid edges *)
}

val create :
  ?name:string ->
  ?rules:Design_rules.t ->
  grid:Routing_grid.t ->
  valves:Valve.t list ->
  ?lm_clusters:Cluster.t list ->
  pins:Point.t list ->
  ?delta:int ->
  unit ->
  (t, string) result
(** Validates:
    - at least one valve; distinct valve ids and positions;
    - every valve on a free in-bounds cell;
    - every pin a distinct free boundary cell not under a valve;
    - at least as many pins as valves (an upper bound on needed pins even
      after full declustering);
    - seed clusters pairwise compatible, flagged length-matched, and only
      referencing known valves;
    - [delta >= 0] (default 1, the paper's setting). *)

val create_exn :
  ?name:string ->
  ?rules:Design_rules.t ->
  grid:Routing_grid.t ->
  valves:Valve.t list ->
  ?lm_clusters:Cluster.t list ->
  pins:Point.t list ->
  ?delta:int ->
  unit ->
  t

val valve_count : t -> int
val pin_count : t -> int
val obstacle_count : t -> int
val find_valve : t -> Valve.id -> Valve.t option
val pp_summary : Format.formatter -> t -> unit

val with_delta : t -> int -> (t, string) result
(** Same instance under a different length-matching threshold (used by the
    delta-sweep experiment and the serving layer's [set_delta] request). *)

val move_valve : t -> Valve.id -> Point.t -> (t, string) result
(** The instance with one valve relocated (seed clusters updated in place).
    Pure: the input is untouched. Errors on an unknown id, a blocked or
    out-of-bounds target, a cell already holding a valve or a pin, or any
    other {!create} invariant the move would break. Moving a valve onto its
    own current cell is the identity. *)

val add_obstacle : t -> Point.t -> (t, string) result
(** The instance with one more statically blocked cell. A candidate pin on
    that cell disappears (like the fault overlay); a valve on it is an
    error — retiring valves is the fault path ({!with_faults}), not an
    edit. *)

val remove_obstacle : t -> Point.t -> (t, string) result
(** The instance with one statically blocked cell freed. Errors when the
    cell is not an obstacle. Note the freed cell does {e not} become a
    candidate pin, even on the boundary. *)

val with_faults :
  t -> blocked:Point.t list -> dead_valves:Valve.id list -> (t, string) result
(** The instance after a fault overlay: [blocked] cells join the static
    obstacle map, [dead_valves] (plus any valve standing on a blocked cell)
    are retired, pins on blocked cells disappear, and seed clusters shrink
    to their surviving members (empty clusters are dropped).  The result is
    re-validated by {!create}; an error means the faults left no routable
    instance (e.g. no valve survives, or more valves than pins). *)
