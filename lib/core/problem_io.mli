(** Plain-text problem instance format, so external designs can be routed
    with the CLI and instances can be archived with experiments.

    Line-oriented; [#] starts a comment; blank lines ignored:

    {v
    name     <string>
    grid     <width> <height>
    delta    <int>
    obstacle <x0> <y0> <x1> <y1>      # inclusive rectangle, repeatable
    valve    <id> <x> <y> <sequence>  # sequence over 0/1/X, repeatable
    cluster  <id> <valve-id> ...      # length-matched cluster, repeatable
    pin      <x> <y>                  # candidate control pin, repeatable
    v} *)

val to_string : Problem.t -> string
(** Canonical: obstacle cells, valves, cluster lines and pins are sorted
    (by point, id, id and point respectively), so problems that are equal
    as values render byte-identically whatever order their parts were
    supplied in. [of_string (to_string p)] re-parses to a problem whose
    own [to_string] is byte-identical — the fixpoint the serving cache
    keys on. *)

val fingerprint : Problem.t -> string
(** Content hash (hex digest) of the canonical {!to_string} rendering.
    Equal problems — however constructed or reordered — share a
    fingerprint; the serving layer's solution-cache key. *)

val of_string : string -> (Problem.t, string) result
(** Total: never raises, whatever the input. Malformed integers, unknown
    directives, non-positive or oversized grids (> 16M cells), duplicate
    valve or cluster ids, out-of-grid valves or pins, and clusters
    referencing unknown valves all come back as [Error]. Obstacle
    rectangles are clamped to the grid (fully off-grid ones block
    nothing). *)

val save : Problem.t -> path:string -> (unit, string) result

val load : path:string -> (Problem.t, string) result
(** Total like {!of_string}; I/O failures come back as [Error] too. *)
