(** Plain-text problem instance format, so external designs can be routed
    with the CLI and instances can be archived with experiments.

    Line-oriented; [#] starts a comment; blank lines ignored:

    {v
    name     <string>
    grid     <width> <height>
    delta    <int>
    obstacle <x0> <y0> <x1> <y1>      # inclusive rectangle, repeatable
    valve    <id> <x> <y> <sequence>  # sequence over 0/1/X, repeatable
    cluster  <id> <valve-id> ...      # length-matched cluster, repeatable
    pin      <x> <y>                  # candidate control pin, repeatable
    v} *)

val to_string : Problem.t -> string

val of_string : string -> (Problem.t, string) result
(** Total: never raises, whatever the input. Malformed integers, unknown
    directives, non-positive or oversized grids (> 16M cells), duplicate
    valve or cluster ids, out-of-grid valves or pins, and clusters
    referencing unknown valves all come back as [Error]. Obstacle
    rectangles are clamped to the grid (fully off-grid ones block
    nothing). *)

val save : Problem.t -> path:string -> (unit, string) result

val load : path:string -> (Problem.t, string) result
(** Total like {!of_string}; I/O failures come back as [Error] too. *)
