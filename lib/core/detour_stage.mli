(** Stage "Path detouring for length-matching" (Algorithm 2).

    For every length-matched cluster routed as a Steiner tree, lengthen the
    short full paths until all of them land in the window
    [[maxL - delta, maxL]]. Legs are detoured in {e path sequence} order
    (Def. 6, nearest the sink first) because those legs affect the fewest
    other full paths; a leg is lengthened in place by U-bump insertion
    ({!Pacor_route.Detour}), with the paper's minimum-length bounded A*
    ({!Pacor_route.Bounded_astar}) as a rerouting fallback when the bumps
    run out of room. A cluster whose short paths cannot all be fixed within
    [theta] rounds keeps its original channels and is reported unmatched.

    Two-valve clusters are never detoured: their mismatch equals the parity
    of the channel length, which no detour can change (path lengths between
    fixed endpoints move in steps of 2), so they are already matched
    whenever [delta >= 1] or the distance is even. *)

open Pacor_geom
open Pacor_grid

type outcome = {
  updated : Routed.t list;    (** input order; tree routes possibly lengthened *)
  matched_ids : int list;     (** cluster ids now within delta *)
  unmatched_ids : int list;   (** length-matched clusters left unmatched *)
}

val run :
  ?workspace:Pacor_route.Workspace.t ->
  grid:Routing_grid.t ->
  delta:int ->
  theta:int ->
  blocked:Point.Set.t ->
  Routed.t list ->
  outcome
(** [blocked] holds every cell the detours must avoid beyond the clusters'
    own internal paths: other clusters' claims, escape channels, valve
    cells. Each cluster's own internal cells are handled internally. *)

val detour_one :
  ?workspace:Pacor_route.Workspace.t ->
  grid:Routing_grid.t ->
  delta:int ->
  theta:int ->
  blocked:Point.Set.t ->
  Routed.t ->
  Routed.t * bool
(** Detour a single tree-routed cluster. [blocked] must exclude the
    cluster's own internal cells (they are handled internally) but include
    everything else it must avoid. Returns the updated route and whether
    the spread now fits [delta]; on failure the original route is returned
    unchanged (Algorithm 2's restore). Raises on non-tree routes. *)
