open Pacor_geom
open Pacor_grid
open Pacor_valve
open Pacor_dme

type lm_shape =
  | Tree of {
      candidate : Candidate.t;
      edge_paths : (int * Path.t) list;
    }
  | Pair of { path : Path.t; a : Valve.id; b : Valve.id }

type t = {
  cluster : Cluster.t;
  shape : lm_shape option;
  paths : Path.t list;
  claimed : Point.Set.t;
}

let claim_paths cluster paths =
  let base =
    List.fold_left
      (fun acc (v : Valve.t) -> Point.Set.add v.position acc)
      Point.Set.empty cluster.Cluster.valves
  in
  List.fold_left
    (fun acc p -> List.fold_left (fun s q -> Point.Set.add q s) acc (Path.points p))
    base paths

let make_plain cluster ~paths ~claimed =
  { cluster; shape = None; paths; claimed = Point.Set.union claimed (claim_paths cluster paths) }

let make_tree cluster ~candidate ~edge_paths =
  let paths = List.map snd edge_paths in
  {
    cluster;
    shape = Some (Tree { candidate; edge_paths });
    paths;
    claimed = claim_paths cluster paths;
  }

let make_pair cluster ~a ~b ~path =
  { cluster; shape = Some (Pair { path; a; b }); paths = [ path ]; claimed = claim_paths cluster [ path ] }

let make_singleton cluster =
  { cluster; shape = None; paths = []; claimed = claim_paths cluster [] }

let internal_length t = List.fold_left (fun acc p -> acc + Path.length p) 0 t.paths

let pair_middle path =
  let l = Path.length path in
  Path.nth path (l / 2)

let start_cells t =
  match t.shape with
  | Some (Tree { candidate; _ }) -> [ candidate.root ]
  | Some (Pair { path; _ }) -> [ pair_middle path ]
  | None -> Point.Set.elements t.claimed

let tree_chain_length candidate edge_paths ~sink =
  let chain = Candidate.chain_to_root candidate ~sink in
  List.fold_left
    (fun acc (child, _parent) ->
       match List.assoc_opt child edge_paths with
       | Some p -> acc + Path.length p
       | None -> acc (* zero-length (coincident) edge *))
    0 chain

let escape_anchor_lengths t =
  match t.shape with
  | None -> []
  | Some (Pair { path; a; b }) ->
    let l = Path.length path in
    let to_a = l / 2 and to_b = l - (l / 2) in
    (* The source end of [path] is valve [a]. *)
    [ (a, to_a); (b, to_b) ]
  | Some (Tree { candidate; edge_paths }) ->
    (* Valves indexed once: [List.nth] per sink is quadratic in cluster
       size, and this runs for every cluster on every rematch pass. *)
    let valves = Array.of_list t.cluster.Cluster.valves in
    if Array.length valves <> Array.length candidate.sinks then
      invalid_arg
        (Printf.sprintf
           "Routed.escape_anchor_lengths: cluster %d has %d valves but its \
            candidate has %d sinks"
           t.cluster.Cluster.id (Array.length valves) (Array.length candidate.sinks));
    List.init (Array.length candidate.sinks) (fun sink_idx ->
      (valves.(sink_idx).Valve.id,
       tree_chain_length candidate edge_paths ~sink:sink_idx))

let is_length_matched_shape t = Option.is_some t.shape

let spread t =
  match escape_anchor_lengths t with
  | [] -> None
  | lengths ->
    let ls = List.map snd lengths in
    Some (List.fold_left max min_int ls - List.fold_left min max_int ls)

let with_edge_path t ~child path =
  match t.shape with
  | Some (Tree { candidate; edge_paths }) ->
    if not (List.mem_assoc child edge_paths) then
      invalid_arg "Routed.with_edge_path: unknown edge";
    let edge_paths =
      List.map (fun (c, p) -> if c = child then (c, path) else (c, p)) edge_paths
    in
    make_tree t.cluster ~candidate ~edge_paths
  | Some (Pair _) | None -> invalid_arg "Routed.with_edge_path: not a tree route"

let pair_halves t =
  match t.shape with
  | Some (Pair { path; _ }) ->
    let l = Path.length path in
    Some (l / 2, l - (l / 2))
  | Some (Tree _) | None -> None
