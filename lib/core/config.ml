type variant =
  | Full
  | Without_selection
  | Detour_first

type hier_mode =
  | Hier_auto
  | Hier_on
  | Hier_off

type t = {
  variant : variant;
  lambda : float;
  max_candidates : int;
  solver : Pacor_select.Tree_select.solver;
  negotiation : Pacor_route.Negotiation.config;
  theta : int;
  max_ripup_rounds : int;
  limits : Pacor_route.Budget.limits;
  verbose : bool;
  hier : hier_mode;
  hier_tile : int;
  hier_threshold : int;
  sched : Pacor_sched.Sched.t option;
}

let default =
  {
    variant = Full;
    lambda = 0.1;
    max_candidates = 8;
    solver = Pacor_select.Tree_select.Exact;
    negotiation = Pacor_route.Negotiation.default_config;
    theta = 10;
    max_ripup_rounds = 10;
    limits = Pacor_route.Budget.no_limits;
    verbose = false;
    hier = Hier_auto;
    hier_tile = 8;
    hier_threshold = 200_000;
    sched = None;
  }

let make ?(variant = Full) () = { default with variant }

let hier_mode_name = function
  | Hier_auto -> "auto"
  | Hier_on -> "on"
  | Hier_off -> "off"

let hier_mode_of_string = function
  | "auto" -> Some Hier_auto
  | "on" -> Some Hier_on
  | "off" -> Some Hier_off
  | _ -> None

let hier_enabled t ~cells =
  match t.hier with
  | Hier_on -> true
  | Hier_off -> false
  | Hier_auto -> cells >= t.hier_threshold

(* The batch runner's retry policy: everything that bounds search effort
   gets roomier, nothing that changes the problem itself. *)
let relax t =
  {
    t with
    limits = Pacor_route.Budget.relax t.limits;
    theta = 2 * t.theta;
    max_ripup_rounds = t.max_ripup_rounds + (t.max_ripup_rounds / 2);
  }

let variant_name = function
  | Full -> "PACOR"
  | Without_selection -> "w/o Sel"
  | Detour_first -> "Detour First"

let pp ppf t =
  Format.fprintf ppf "%s (lambda=%.2f cand=%d gamma=%d theta=%d)"
    (variant_name t.variant) t.lambda t.max_candidates t.negotiation.gamma t.theta
