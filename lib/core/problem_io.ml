open Pacor_geom
open Pacor_grid
open Pacor_valve

(* The emitted form is CANONICAL: two problems that are equal as values
   (same grid, same obstacle set, same valves/clusters/pins/delta) render to
   byte-identical text regardless of the construction order of their lists.
   The serving layer's cache keys ({!fingerprint}) depend on this, so every
   repeatable section is sorted here rather than emitted in storage order.
   Within a cluster line the member order is preserved — it is part of the
   cluster's identity (sequence alignment) — but the lines themselves sort
   by cluster id. *)
let to_string (p : Problem.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  add "# PACOR control-layer routing instance";
  add "name %s" p.name;
  add "grid %d %d" (Routing_grid.width p.grid) (Routing_grid.height p.grid);
  add "delta %d" p.delta;
  (* Obstacles are stored cell by cell: rectangles are a convenience of the
     input format only. *)
  let blocked = ref [] in
  Obstacle_map.iter_blocked (Routing_grid.obstacles p.grid) (fun pt ->
    blocked := pt :: !blocked);
  List.iter
    (fun (pt : Point.t) -> add "obstacle %d %d %d %d" pt.x pt.y pt.x pt.y)
    (List.sort_uniq Point.compare !blocked);
  List.iter
    (fun (v : Valve.t) ->
       add "valve %d %d %d %s" v.id v.position.x v.position.y
         (Activation.string_of_sequence v.sequence))
    (List.sort
       (fun (a : Valve.t) (b : Valve.t) -> Int.compare a.id b.id)
       p.valves);
  List.iter
    (fun (c : Cluster.t) ->
       add "cluster %d %s" c.id
         (String.concat " " (List.map string_of_int (Cluster.valve_ids c))))
    (List.sort
       (fun (a : Cluster.t) (b : Cluster.t) -> Int.compare a.id b.id)
       p.lm_clusters);
  List.iter
    (fun (pt : Point.t) -> add "pin %d %d" pt.x pt.y)
    (List.sort Point.compare p.pins);
  Buffer.contents buf

let fingerprint p = Digest.to_hex (Digest.string (to_string p))

(* 16M cells (~2^24): far above any realistic chip, far below what makes
   grid allocation or block-filling a denial-of-service vector. *)
let max_grid_cells = 16_777_216

type accum = {
  mutable name : string;
  mutable dims : (int * int) option;
  mutable delta : int;
  mutable obstacles : Rect.t list;
  mutable valves : Valve.t list;
  mutable clusters : (int * int list) list;
  mutable pins : Point.t list;
}

let parse text =
  let acc =
    { name = "unnamed"; dims = None; delta = 1; obstacles = []; valves = [];
      clusters = []; pins = [] }
  in
  let err line fmt = Format.kasprintf (fun s -> Error (Printf.sprintf "line %d: %s" line s)) fmt in
  let parse_int line s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> err line "expected integer, got %S" s
  in
  let rec ints line = function
    | [] -> Ok []
    | s :: rest ->
      (match parse_int line s with
       | Error _ as e -> e
       | Ok v -> (match ints line rest with Ok vs -> Ok (v :: vs) | Error _ as e -> e))
  in
  let handle lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") with
    | [] -> Ok ()
    | "name" :: rest ->
      acc.name <- String.concat " " rest;
      Ok ()
    | [ "grid"; w; h ] ->
      (match ints lineno [ w; h ] with
       | Ok [ w; h ] ->
         acc.dims <- Some (w, h);
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | [ "delta"; d ] ->
      (match parse_int lineno d with
       | Ok d ->
         acc.delta <- d;
         Ok ()
       | Error e -> Error e)
    | [ "obstacle"; x0; y0; x1; y1 ] ->
      (match ints lineno [ x0; y0; x1; y1 ] with
       | Ok [ x0; y0; x1; y1 ] ->
         acc.obstacles <- Rect.make ~x0 ~y0 ~x1 ~y1 :: acc.obstacles;
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | [ "valve"; id; x; y; seq ] ->
      (match ints lineno [ id; x; y ] with
       | Ok [ id; x; y ] ->
         (match Activation.sequence_of_string seq with
          | Ok sequence ->
            acc.valves <-
              Valve.make ~id ~position:(Point.make x y) ~sequence :: acc.valves;
            Ok ()
          | Error e -> err lineno "%s" e)
       | Ok _ -> assert false
       | Error e -> Error e)
    | "cluster" :: id :: members ->
      (match ints lineno (id :: members) with
       | Ok (id :: members) ->
         acc.clusters <- (id, members) :: acc.clusters;
         Ok ()
       | Ok [] -> assert false
       | Error e -> Error e)
    | [ "pin"; x; y ] ->
      (match ints lineno [ x; y ] with
       | Ok [ x; y ] ->
         acc.pins <- Point.make x y :: acc.pins;
         Ok ()
       | Ok _ -> assert false
       | Error e -> Error e)
    | keyword :: _ -> err lineno "unknown or malformed directive %S" keyword
  in
  let lines = String.split_on_char '\n' text in
  let rec run lineno = function
    | [] -> Ok ()
    | l :: rest ->
      (match handle lineno l with Ok () -> run (lineno + 1) rest | Error _ as e -> e)
  in
  match run 1 lines with
  | Error _ as e -> e
  | Ok () ->
    (match acc.dims with
     | None -> Error "missing 'grid' directive"
     | Some (width, height) when width <= 0 || height <= 0 ->
       Error (Printf.sprintf "grid %dx%d: dimensions must be positive" width height)
     | Some (width, height) when width > max_grid_cells / height ->
       (* An attacker-sized grid would otherwise allocate (and block-fill)
          width*height cells before any semantic validation runs. *)
       Error
         (Printf.sprintf "grid %dx%d: exceeds the %d-cell limit" width height
            max_grid_cells)
     | Some (width, height) ->
       (* Clamp obstacle rectangles to the grid: [block_rect] iterates the
          whole rectangle, so an out-of-range corner must not control the
          loop bounds. Fully off-grid rectangles block nothing. *)
       let clamp (r : Rect.t) =
         if r.Rect.x1 < 0 || r.Rect.y1 < 0 || r.Rect.x0 >= width
            || r.Rect.y0 >= height
         then None
         else
           Some
             (Rect.make ~x0:(max 0 r.Rect.x0) ~y0:(max 0 r.Rect.y0)
                ~x1:(min (width - 1) r.Rect.x1) ~y1:(min (height - 1) r.Rect.y1))
       in
       let grid =
         Routing_grid.create ~width ~height
           ~obstacles:(List.filter_map clamp (List.rev acc.obstacles)) ()
       in
       let valves = List.rev acc.valves in
       let find_valve id = List.find_opt (fun (v : Valve.t) -> v.id = id) valves in
       let rec dup_cluster_id seen = function
         | [] -> None
         | (id, _) :: rest ->
           if List.mem id seen then Some id else dup_cluster_id (id :: seen) rest
       in
       let rec build_clusters = function
         | [] -> Ok []
         | (id, members) :: rest ->
           let vs = List.filter_map find_valve members in
           if List.length vs <> List.length members then
             Error (Printf.sprintf "cluster %d references an unknown valve" id)
           else
             (match Cluster.make ~id ~length_matched:true vs with
              | Error e -> Error (Printf.sprintf "cluster %d: %s" id e)
              | Ok c ->
                (match build_clusters rest with
                 | Ok cs -> Ok (c :: cs)
                 | Error _ as e -> e))
       in
       (match dup_cluster_id [] (List.rev acc.clusters) with
        | Some id -> Error (Printf.sprintf "duplicate cluster id %d" id)
        | None ->
          (match build_clusters (List.rev acc.clusters) with
           | Error _ as e -> e
           | Ok lm_clusters ->
             Problem.create ~name:acc.name ~grid ~valves ~lm_clusters
               ~pins:(List.rev acc.pins) ~delta:acc.delta ())))

(* Totality backstop: every anticipated failure above already returns
   [Error], so anything escaping here is a parser bug — still reported as
   a value, never as an exception, because untrusted input must not be
   able to crash a batch worker. *)
let of_string text =
  try parse text
  with exn -> Error ("parser: uncaught exception: " ^ Printexc.to_string exn)

let save p ~path =
  try
    let oc = open_out path in
    output_string oc (to_string p);
    close_out oc;
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
  with
  | Sys_error e -> Error e
  | exn -> Error (Printexc.to_string exn)
