(** Stage "Length-matching cluster routing" (Sec. 4): DME candidates,
    MWCP-based selection, negotiation-based routing — plus the fallback that
    demotes unroutable length-matched clusters to ordinary MST routing.

    Sink order invariant: candidates are always enumerated with sinks in the
    cluster's valve order (id-sorted), so sink index [i] of a candidate is
    valve [i] of the cluster — {!Routed.escape_anchor_lengths} relies on
    this. *)

open Pacor_geom
open Pacor_grid
open Pacor_valve

type outcome = {
  routed : Routed.t list;     (** successfully routed LM clusters *)
  demoted : Cluster.t list;   (** LM clusters that fell back to ordinary routing *)
  iterations : int;           (** negotiation rounds used in total *)
}

val route :
  ?workspace:Pacor_route.Workspace.t ->
  config:Config.t ->
  grid:Routing_grid.t ->
  valve_cells:Point.Set.t ->
  Cluster.t list ->
  outcome
(** [route ~config ~grid ~valve_cells clusters] routes every length-matched
    cluster of [clusters] (others are ignored). [valve_cells] must hold the
    positions of {e all} valves of the chip; they are treated as blockages
    so no channel runs over a foreign valve (each edge's own endpoints are
    exempt inside the router). *)

val candidates_for :
  config:Config.t ->
  grid:Routing_grid.t ->
  usable:(Point.t -> bool) ->
  Cluster.t ->
  Pacor_dme.Candidate.t list
(** Candidate trees for one cluster: DME enumeration for three or more
    valves, the single direct-edge candidate for a two-valve cluster
    (Sec. 4's special case; its mismatch is the pair's parity), a trivial
    candidate for singletons. Exposed for the Fig. 3 example and tests. *)

val route_single :
  ?workspace:Pacor_route.Workspace.t ->
  config:Config.t ->
  grid:Routing_grid.t ->
  obstacles:Obstacle_map.t ->
  Cluster.t ->
  Pacor_dme.Candidate.t ->
  Routed.t option
(** Route one cluster's chosen candidate in isolation (used by the
    rematch pass): negotiate its tree edges against the given static
    blockages and build the {!Routed.t}. [None] when some edge cannot be
    routed. *)
