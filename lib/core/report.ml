type cell = {
  matched : int;
  matched_length : int;
  total_length : int;
  runtime_s : float;
}

type row = {
  design : string;
  clusters : int;
  without_sel : cell;
  detour_first : cell;
  pacor : cell;
}

let cell_of_stats (s : Solution.stats) =
  {
    matched = s.matched_clusters;
    matched_length = s.matched_length;
    total_length = s.total_length;
    runtime_s = s.runtime_s;
  }

let row_of_stats ~design ~without_sel ~detour_first ~pacor =
  {
    design;
    clusters = pacor.Solution.clusters;
    without_sel = cell_of_stats without_sel;
    detour_first = cell_of_stats detour_first;
    pacor = cell_of_stats pacor;
  }

(* Table 2 of the paper, verbatim. *)
let paper_table2 =
  let c matched matched_length total_length runtime_s =
    { matched; matched_length; total_length; runtime_s }
  in
  [ { design = "Chip1"; clusters = 40;
      without_sel = c 13 1422 11011 305.78;
      detour_first = c 20 1525 9495 376.5;
      pacor = c 24 2412 10929 201.26 };
    { design = "Chip2"; clusters = 22;
      without_sel = c 22 1262 3612 31.97;
      detour_first = c 22 1262 3612 35.55;
      pacor = c 22 1262 3612 35.14 };
    { design = "S1"; clusters = 2;
      without_sel = c 2 28 36 0.02;
      detour_first = c 2 28 36 0.01;
      pacor = c 2 28 36 0.01 };
    { design = "S2"; clusters = 2;
      without_sel = c 1 71 168 0.18;
      detour_first = c 1 40 109 0.18;
      pacor = c 1 40 105 0.11 };
    { design = "S3"; clusters = 5;
      without_sel = c 4 264 425 1.35;
      detour_first = c 4 161 277 1.36;
      pacor = c 4 161 277 1.3 };
    { design = "S4"; clusters = 7;
      without_sel = c 6 1371 1547 2.98;
      detour_first = c 6 595 809 1.45;
      pacor = c 6 531 888 1.39 };
    { design = "S5"; clusters = 13;
      without_sel = c 3 293 2945 58.41;
      detour_first = c 4 830 3153 51.15;
      pacor = c 5 1065 3110 62.65 } ]

let ratio num den = if den = 0.0 then 1.0 else num /. den

let averages rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let fold f =
    let ws, df, pa =
      List.fold_left
        (fun (ws, df, pa) r ->
           let w, d, p = f r in
           (ws +. w, df +. d, pa +. p))
        (0.0, 0.0, 0.0) rows
    in
    (ws /. n, df /. n, pa /. n)
  in
  let matched =
    fold (fun r ->
      ( ratio (float_of_int r.without_sel.matched) (float_of_int r.pacor.matched),
        ratio (float_of_int r.detour_first.matched) (float_of_int r.pacor.matched),
        1.0 ))
  in
  let matched_len =
    fold (fun r ->
      ( ratio (float_of_int r.without_sel.matched_length) (float_of_int r.pacor.matched_length),
        ratio (float_of_int r.detour_first.matched_length) (float_of_int r.pacor.matched_length),
        1.0 ))
  in
  let total_len =
    fold (fun r ->
      ( ratio (float_of_int r.without_sel.total_length) (float_of_int r.pacor.total_length),
        ratio (float_of_int r.detour_first.total_length) (float_of_int r.pacor.total_length),
        1.0 ))
  in
  let runtime =
    fold (fun r ->
      ( ratio r.without_sel.runtime_s r.pacor.runtime_s,
        ratio r.detour_first.runtime_s r.pacor.runtime_s,
        1.0 ))
  in
  (matched, matched_len, total_len, runtime)

let print_table ppf rows =
  let line () =
    Format.fprintf ppf
      "+--------+------+---------------------+---------------------------+---------------------------+---------------------------+@."
  in
  line ();
  Format.fprintf ppf
    "| Design | #Cl  | #Matched Clusters   | Matched channel length    | Total channel length      | Runtime (s)               |@.";
  Format.fprintf ppf
    "|        |      |  w/oSel DetFst PACOR |   w/oSel  DetFst   PACOR  |   w/oSel  DetFst   PACOR  |   w/oSel  DetFst   PACOR  |@.";
  line ();
  List.iter
    (fun r ->
       Format.fprintf ppf
         "| %-6s | %4d | %6d %6d %6d | %8d %8d %8d | %8d %8d %8d | %8.2f %8.2f %8.2f |@."
         r.design r.clusters r.without_sel.matched r.detour_first.matched r.pacor.matched
         r.without_sel.matched_length r.detour_first.matched_length r.pacor.matched_length
         r.without_sel.total_length r.detour_first.total_length r.pacor.total_length
         r.without_sel.runtime_s r.detour_first.runtime_s r.pacor.runtime_s)
    rows;
  line ();
  let (m_w, m_d, m_p), (ml_w, ml_d, ml_p), (tl_w, tl_d, tl_p), (rt_w, rt_d, rt_p) =
    averages rows
  in
  Format.fprintf ppf
    "| Avg.   |      | %6.2f %6.2f %6.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f |@."
    m_w m_d m_p ml_w ml_d ml_p tl_w tl_d tl_p rt_w rt_d rt_p;
  line ()

let print_search_stats ppf (solution : Solution.t) =
  let stages =
    List.filter
      (fun (_, s) -> not (Pacor_route.Search_stats.is_zero s))
      solution.Solution.stage_search
  in
  match stages with
  | [] -> Format.fprintf ppf "search: no grid searches recorded@."
  | _ ->
    List.iter
      (fun (label, s) ->
         Format.fprintf ppf "search %-14s %a@." label Pacor_route.Search_stats.pp s)
      stages;
    let total =
      List.fold_left
        (fun acc (_, s) -> Pacor_route.Search_stats.add acc s)
        Pacor_route.Search_stats.zero solution.Solution.stage_search
    in
    Format.fprintf ppf "search %-14s %a@." "total" Pacor_route.Search_stats.pp total

let shape_checks ~measured =
  let find design = List.find_opt (fun r -> r.design = design) measured in
  let all_designs_present =
    List.for_all (fun r -> find r.design <> None) paper_table2
  in
  let pacor_ge_without_sel =
    List.for_all (fun r -> r.pacor.matched >= r.without_sel.matched) measured
  in
  (* The paper singles out Chip2 — two-valve clusters only, abundant
     routing resource — as the design where the three variants tie. *)
  let saturated_tie =
    match find "Chip2" with
    | None -> true (* not measured in this sweep *)
    | Some r ->
      r.pacor.matched = r.without_sel.matched
      && r.pacor.matched = r.detour_first.matched
      && (r.pacor.total_length = r.without_sel.total_length
          || abs (r.pacor.total_length - r.without_sel.total_length) * 20
             <= r.pacor.total_length)
  in
  let pacor_most_matched_overall =
    let sum f = List.fold_left (fun a r -> a + f r) 0 measured in
    let p = sum (fun r -> r.pacor.matched) in
    p >= sum (fun r -> r.without_sel.matched)
    && p >= sum (fun r -> r.detour_first.matched)
  in
  [ ("all seven designs measured", all_designs_present);
    ("PACOR matches >= w/o Sel on every design", pacor_ge_without_sel);
    ("variants tie on saturated designs (Chip2 effect)", saturated_tie);
    ("PACOR matches the most clusters overall", pacor_most_matched_overall) ]
