(** The PACOR flow of Fig. 2, end to end:

    valve clustering -> length-matching cluster routing (DME candidates,
    MWCP selection, negotiated routing) -> MST routing of ordinary clusters
    -> min-cost-flow escape routing with rip-up / declustering -> final path
    detouring for length matching.

    The [Detour_first] variant runs the detour stage between negotiation and
    escape instead; [Without_selection] skips the MWCP selection. *)

type error = {
  stage : string;
  message : string;
}

val run :
  ?config:Config.t ->
  ?workspace:Pacor_route.Workspace.t ->
  Problem.t ->
  (Solution.t, error) result
(** Routes the instance. Structural failures (malformed escape inputs)
    surface as [Error]; congestion never does — unrouted valves and
    unmatched clusters simply show up in the solution's statistics and in
    {!Solution.validate}.

    {b Totality:} [run] never raises. Any exception escaping the flow is
    caught and returned as [Error { stage = "internal"; _ }].

    {b Budgets and degradation:} [config.limits] installs a
    {!Pacor_route.Budget.t} on the workspace for the duration of the run
    (the previous budget is restored on every exit path). When a limit
    trips, the flow degrades instead of failing: in-flight searches fail
    fast (their callers demote length-matched clusters to ordinary routes
    and decluster ordinary ones to singletons), the escape rip-up loop
    stops at the current assignment — or, if the budget died before escape
    ran, every cluster is reported pinless — and the detour / rematch
    refinement stages are skipped. The chain is therefore: negotiated LM
    routing -> plain MST routing -> unrouted-with-diagnostics, with each
    stage's outcome recorded in [Solution.stage_outcomes] and the tripped
    limit in [Solution.budget_exhausted]; budget exhaustion never becomes
    an [Error].

    Pass [workspace] to reuse one search workspace (and its warm arrays)
    across many runs — the batch runner gives each worker domain its own.

    {b Re-entrancy:} [run] keeps all mutable state local — the search
    workspace, rip-up hashtables and work obstacle maps are created per
    call (or owned by the caller via [workspace]), and no module in the
    flow holds module-level mutable state. Concurrent [run] calls from
    several domains are therefore safe, and may even share the (immutable)
    [Problem.t], provided each call uses a distinct workspace. Timing
    ([Solution.runtime_s], [stage_seconds]) is the monotonic wall clock
    ({!Pacor_route.Clock.now_mono}), not process CPU time and not the
    NTP-adjustable system clock, so per-run figures stay truthful when
    other domains are busy or the system clock steps mid-run. The result is a deterministic
    function of [(config, problem)] — independent of [workspace] warmth
    and of how runs are scheduled across domains — except under a
    wall-clock deadline, which by nature trips at a scheduling-dependent
    point; expansion and iteration caps remain deterministic. *)
