(** The PACOR flow of Fig. 2, end to end:

    valve clustering -> length-matching cluster routing (DME candidates,
    MWCP selection, negotiated routing) -> MST routing of ordinary clusters
    -> min-cost-flow escape routing with rip-up / declustering -> final path
    detouring for length matching.

    The [Detour_first] variant runs the detour stage between negotiation and
    escape instead; [Without_selection] skips the MWCP selection. *)

type error = {
  stage : string;
  message : string;
}

type hier_tier =
  | Flat_mode       (** hierarchy disabled for this run (off, or auto below threshold) *)
  | Hier_identical  (** tier 1: confinement never changed a relaxation *)
  | Hier_certified  (** tier 2: lower bounds prove no flat run beats it *)
  | Hier_race_won   (** tier 3: raced flat, hierarchical strictly better *)
  | Hier_race_flat  (** tier 3: raced flat, flat kept (equal or better) *)
  | Hier_error_flat (** hierarchical attempt errored; flat result returned *)

val tier_name : hier_tier -> string

type report = {
  solution : Solution.t;
  tier : hier_tier;
  hier_search : Pacor_route.Search_stats.snapshot option;
      (** search totals of the confined (hierarchical) attempt, when one ran *)
  flat_search : Pacor_route.Search_stats.snapshot option;
      (** search totals of the flat attempt, when one ran *)
  clips : int;      (** corridor-refused relaxations across the confined attempt *)
  fallbacks : int;  (** whole-grid fallback brackets taken *)
  bidir : int;      (** bidirectional searches engaged *)
}

val search_total : Solution.t -> Pacor_route.Search_stats.snapshot
(** Sum of the solution's per-stage search counters. *)

val run_report :
  ?config:Config.t ->
  ?workspace:Pacor_route.Workspace.t ->
  Problem.t ->
  (report, error) result
(** {!run} plus hierarchical-routing telemetry: which never-worse-ladder
    tier resolved the run and the search totals of each attempt, so the
    bench can report the confined attempt's cost separately from the
    race's. In [Flat_mode] only [flat_search] is set. *)

val run :
  ?config:Config.t ->
  ?workspace:Pacor_route.Workspace.t ->
  Problem.t ->
  (Solution.t, error) result
(** Routes the instance. Structural failures (malformed escape inputs)
    surface as [Error]; congestion never does — unrouted valves and
    unmatched clusters simply show up in the solution's statistics and in
    {!Solution.validate}.

    {b Totality:} [run] never raises. Any exception escaping the flow is
    caught and returned as [Error { stage = "internal"; _ }].

    {b Budgets and degradation:} [config.limits] installs a
    {!Pacor_route.Budget.t} on the workspace for the duration of the run
    (the previous budget is restored on every exit path). When a limit
    trips, the flow degrades instead of failing: in-flight searches fail
    fast (their callers demote length-matched clusters to ordinary routes
    and decluster ordinary ones to singletons), the escape rip-up loop
    stops at the current assignment — or, if the budget died before escape
    ran, every cluster is reported pinless — and the detour / rematch
    refinement stages are skipped. The chain is therefore: negotiated LM
    routing -> plain MST routing -> unrouted-with-diagnostics, with each
    stage's outcome recorded in [Solution.stage_outcomes] and the tripped
    limit in [Solution.budget_exhausted]; budget exhaustion never becomes
    an [Error].

    Pass [workspace] to reuse one search workspace (and its warm arrays)
    across many runs — the batch runner gives each worker domain its own.

    {b Re-entrancy:} [run] keeps all mutable state local — the search
    workspace, rip-up hashtables and work obstacle maps are created per
    call (or owned by the caller via [workspace]), and no module in the
    flow holds module-level mutable state. Concurrent [run] calls from
    several domains are therefore safe, and may even share the (immutable)
    [Problem.t], provided each call uses a distinct workspace. Timing
    ([Solution.runtime_s], [stage_seconds]) is the monotonic wall clock
    ({!Pacor_route.Clock.now_mono}), not process CPU time and not the
    NTP-adjustable system clock, so per-run figures stay truthful when
    other domains are busy or the system clock steps mid-run. The result is a deterministic
    function of [(config, problem)] — independent of [workspace] warmth
    and of how runs are scheduled across domains — except under a
    wall-clock deadline, which by nature trips at a scheduling-dependent
    point; expansion and iteration caps remain deterministic. *)
