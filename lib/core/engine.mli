(** The PACOR flow of Fig. 2, end to end:

    valve clustering -> length-matching cluster routing (DME candidates,
    MWCP selection, negotiated routing) -> MST routing of ordinary clusters
    -> min-cost-flow escape routing with rip-up / declustering -> final path
    detouring for length matching.

    The [Detour_first] variant runs the detour stage between negotiation and
    escape instead; [Without_selection] skips the MWCP selection. *)

type error = {
  stage : string;
  message : string;
}

val run :
  ?config:Config.t ->
  ?workspace:Pacor_route.Workspace.t ->
  Problem.t ->
  (Solution.t, error) result
(** Routes the instance. Structural failures (malformed escape inputs)
    surface as [Error]; congestion never does — unrouted valves and
    unmatched clusters simply show up in the solution's statistics and in
    {!Solution.validate}.

    Pass [workspace] to reuse one search workspace (and its warm arrays)
    across many runs — the batch runner gives each worker domain its own.

    {b Re-entrancy:} [run] keeps all mutable state local — the search
    workspace, rip-up hashtables and work obstacle maps are created per
    call (or owned by the caller via [workspace]), and no module in the
    flow holds module-level mutable state. Concurrent [run] calls from
    several domains are therefore safe, and may even share the (immutable)
    [Problem.t], provided each call uses a distinct workspace. Timing
    ([Solution.runtime_s], [stage_seconds]) is wall-clock monotone-enough
    [Unix.gettimeofday], not process CPU time, so per-run figures stay
    truthful when other domains are busy. The result is a deterministic
    function of [(config, problem)] — independent of [workspace] warmth
    and of how runs are scheduled across domains. *)
