(** Hierarchical two-stage routing: tile-level global planning plus the
    never-worse ladder the engine uses to keep hierarchical results
    certifiably no worse than flat ones.

    The ladder has three tiers, cheapest first:

    + {e byte identity} — if the whole run recorded zero corridor clips,
      zero fallbacks and zero bidirectional searches, confinement never
      changed a single relaxation and the solution {e is} the flat one;
    + {e certificate} — {!certified} proves by lower bounds that no flat
      run could beat the solution on (routed valves, matched clusters,
      total length);
    + {e race} — otherwise the engine also runs flat and keeps the better
      solution by {!score}.

    All three live here so the engine, the bench and the qcheck property
    agree on the exact criteria. *)

open Pacor_valve

type plan = {
  tg : Pacor_grid.Tile_graph.t;
  cluster_tiles : int list;
      (** corridor for the internal stages: every tile a cluster's
          channels can plausibly need (inflated bounding boxes + halo) *)
  escape_tiles : int list;
      (** the escape flow network's tiles — narrow by design: the tile
          corridors the global flow assigned plus a haloed ring around
          each cluster's start tiles. The escape solve's per-augmentation
          cost scales with this corridor's area, not the chip's *)
  post_tiles : int list;
      (** workspace mask from the escape stage onwards: [cluster_tiles]
          union [escape_tiles], haloed — rip-up re-routes, detouring and
          rematching may travel anywhere a cluster or escape reaches *)
  escape_mask : Bytes.t;
      (** per-tile membership table of [escape_tiles] (see
          {!Pacor_grid.Tile_graph.mask_mem}) *)
  post_mask : Bytes.t;  (** per-tile membership table of [post_tiles] *)
  requests : int;  (** escape requests the global flow planned over *)
  assigned : int;  (** how many of them got a tile corridor *)
}

val plan :
  ?alive:(unit -> bool) ->
  ?workspace:Pacor_route.Workspace.t ->
  config:Config.t ->
  Problem.t ->
  Cluster.t list ->
  plan option
(** Coarsen the grid at [config.hier_tile] (rounded up to a power of two)
    and plan corridors for the given clustering. [None] when the grid is
    too small for the hierarchy to prune anything (under 3x3 tiles) — the
    engine then runs plainly flat. *)

val install_detail : Pacor_route.Workspace.t -> plan -> unit
(** Activate the internal-stage corridor ([cluster_tiles]) on the
    workspace mask. *)

val install_post : Pacor_route.Workspace.t -> plan -> unit
(** Activate the escape-and-after workspace corridor ([post_tiles]);
    replaces the detail corridor. *)

val escape_predicate : Pacor_route.Workspace.t -> plan -> int -> bool
(** Membership in the narrow escape corridor ([escape_mask]) as a cell
    predicate for {!Pacor_flow.Escape.route}'s [corridor] argument,
    counting every refusal as a clip on the workspace. Independent of the
    installed workspace mask, so the escape network can be narrower than
    the mask the surrounding A*-based stages search under. *)

val post_predicate : Pacor_route.Workspace.t -> plan -> int -> bool
(** Same, over [post_mask] — the wider corridor passed as
    {!Pacor_flow.Escape.route}'s [corridor_fallback], so a starved escape
    retries on the cluster-plus-corridor region before paying for the
    whole grid. *)

val escape_lb : pins:Pacor_geom.Point.t list -> Routed.t -> int
(** Lower bound (in edges) on the escape length {e any} routing of this
    cluster's topology can achieve, minimised over all candidate pins.
    Exposed for the certificate tests. *)

val certify_failure : Solution.t -> string option
(** [None] when the tier-2 certificate holds; otherwise the first
    condition that failed, for diagnostics. *)

val certified : Solution.t -> bool
(** Tier-2 certificate: the solution routed every valve, kept and matched
    every initially multi-valve cluster, ran every stage to completion
    within budget, and has every internal channel at its Manhattan minimum
    and every escape at {!escape_lb}. Such a solution is equal-or-better
    than any flat run on (routed valves, matched clusters, total length),
    so the race is unnecessary. *)

val score : Solution.t -> int * int * int
(** Race ordering: [(routed valves, matched clusters, -total length)],
    compared lexicographically (larger wins). *)
