open Pacor_geom


type assignment = {
  routed : Routed.t;
  escape : Pacor_flow.Escape.routed option;
}

type outcome = {
  assignments : assignment list;
  failed_clusters : int list;
  escape_length : int;
}

(* One cluster's escape in isolation is a multi-source shortest path — no
   need for the full min-cost-flow network the global stage uses. *)
let single ?workspace ~grid ~claimed ~pins ~start_cells () =
  match pins with
  | [] -> None
  | _ :: _ ->
    (* Boundary cells — pins included — are never transit space: A* exempts
       the search's own targets, and it stops at the first target popped, so
       the path cannot run {e through} one candidate pin on its way to
       another (which a later escape might then be assigned). *)
    let spec =
      Pacor_route.Astar.point_spec ~grid
        ~usable:(fun p ->
          Pacor_grid.Routing_grid.free grid p
          && (not (Point.Set.mem p claimed))
          && not (Pacor_grid.Routing_grid.on_boundary grid p))
        ~extra_cost:(fun _ -> 0)
    in
    (match
       Pacor_route.Astar.search ?workspace ~grid ~spec ~sources:start_cells ~targets:pins ()
     with
     | Some path ->
       Some
         { Pacor_flow.Escape.idx = 0;
           start_cell = Pacor_grid.Path.source path;
           pin = Pacor_grid.Path.target path;
           path }
     | None -> None)

let run ?alive ?sched ?workspace ?corridor ?corridor_fallback ~grid ~pins routed_clusters =
  let claimed =
    List.fold_left
      (fun acc (r : Routed.t) -> Point.Set.union acc r.claimed)
      Point.Set.empty routed_clusters
  in
  let requests =
    List.mapi
      (fun i (r : Routed.t) ->
         { Pacor_flow.Escape.cluster_idx = i; start_cells = Routed.start_cells r })
      routed_clusters
  in
  match
    Pacor_flow.Escape.route ?alive ?sched ?workspace ?corridor
      ?corridor_fallback ~grid ~claimed ~pins requests
  with
  | Error _ as e -> e
  | Ok out ->
    let by_idx = Hashtbl.create 16 in
    List.iter
      (fun (r : Pacor_flow.Escape.routed) -> Hashtbl.replace by_idx r.idx r)
      out.routed;
    let assignments =
      List.mapi
        (fun i r -> { routed = r; escape = Hashtbl.find_opt by_idx i })
        routed_clusters
    in
    let failed_clusters =
      List.filter_map
        (fun a ->
           if a.escape = None then Some a.routed.Routed.cluster.Pacor_valve.Cluster.id
           else None)
        assignments
    in
    Ok { assignments; failed_clusters; escape_length = out.total_length }
