open Pacor_geom
open Pacor_grid
open Pacor_valve

type outcome = {
  routed : Routed.t list;
  declustered : int;
}

let route_all ?workspace ~grid ~valve_cells ~already_claimed ~fresh_id clusters =
  let static = Routing_grid.obstacles grid in
  let work = Obstacle_map.copy static in
  Point.Set.iter (fun p -> Obstacle_map.block work p) already_claimed;
  Point.Set.iter (fun p -> Obstacle_map.block work p) valve_cells;
  let order =
    List.sort
      (fun (a : Cluster.t) b ->
         let sa = Cluster.size a and sb = Cluster.size b in
         if sa <> sb then Int.compare sb sa else Int.compare a.id b.id)
      clusters
  in
  let declustered = ref 0 in
  let route_one (cluster : Cluster.t) =
    let own = Cluster.positions cluster in
    (* The cluster's own valves are legal cells for its channels. *)
    List.iter (Obstacle_map.unblock work) own;
    let reblock_foreign () =
      List.iter
        (fun p -> if Point.Set.mem p valve_cells then Obstacle_map.block work p)
        own
    in
    match Pacor_route.Mst_router.route ?workspace ~grid ~obstacles:work own with
    | Some mst ->
      reblock_foreign ();
      Point.Set.iter (fun p -> Obstacle_map.block work p) mst.claimed;
      [ Routed.make_plain cluster ~paths:mst.paths ~claimed:mst.claimed ]
    | None ->
      reblock_foreign ();
      incr declustered;
      let singles = Cluster.split cluster ~fresh_id in
      List.map Routed.make_singleton singles
  in
  let routed = List.concat_map route_one order in
  { routed; declustered = !declustered }
