open Pacor_geom
open Pacor_valve

type error = {
  stage : string;
  message : string;
}

let log config fmt =
  if config.Config.verbose then Format.eprintf ("[pacor] " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

(* Union of every cluster's claimed cells except the given one's. *)
let claims_of routed_list =
  List.fold_left
    (fun acc (r : Routed.t) -> Point.Set.union acc r.claimed)
    Point.Set.empty routed_list

(* Demote a routed length-matched cluster (or re-route a declustered one):
   rip its channels and route it as an ordinary cluster around everything
   else. *)
let reroute_as_plain ~workspace ~grid ~valve_cells ~others ~fresh_id (cluster : Cluster.t) =
  let out =
    Plain_route.route_all ~workspace ~grid ~valve_cells ~already_claimed:others ~fresh_id
      [ cluster ]
  in
  out.Plain_route.routed

let detour ~workspace ~grid ~delta ~theta ~valve_cells ~escapes routed_list =
  let escape_cells =
    List.fold_left
      (fun acc (e : Pacor_flow.Escape.routed option) ->
         match e with
         | None -> acc
         | Some e ->
           List.fold_left
             (fun s p -> Point.Set.add p s)
             acc
             (Pacor_grid.Path.points e.Pacor_flow.Escape.path))
      Point.Set.empty escapes
  in
  let blocked =
    Point.Set.union valve_cells (Point.Set.union (claims_of routed_list) escape_cells)
  in
  Detour_stage.run ~workspace ~grid ~delta ~theta ~blocked routed_list

let route_inner ~config ~workspace ~budget ~hier (problem : Problem.t) =
  (* Monotonic wall-clock (not process CPU, not gettimeofday) time: with several engine runs in flight
     on concurrent domains, [Sys.time] charges every domain's work to each
     run and misreports per-instance runtime and batch speedup. *)
  let t0 = Pacor_route.Clock.now_mono () in
  let timings = ref [] in
  let stage_search = ref [] in
  let stage_outcomes = ref [] in
  let alive () = Pacor_route.Budget.alive budget in
  let timed label f =
    let before = Pacor_route.Budget.exhausted budget in
    let s0 = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats workspace) in
    let start = Pacor_route.Clock.now_mono () in
    let result = f () in
    timings := (label, Pacor_route.Clock.now_mono () -. start) :: !timings;
    let s1 = Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats workspace) in
    stage_search := (label, Pacor_route.Search_stats.diff s1 s0) :: !stage_search;
    let outcome =
      match before, Pacor_route.Budget.exhausted budget with
      | None, None -> Solution.Completed
      | None, Some Pacor_route.Budget.Deadline -> Solution.Timed_out
      | None, Some r -> Solution.Degraded (Pacor_route.Budget.reason_label r)
      | Some r, _ ->
        (* Exhausted before the stage even started: it ran in fail-fast
           mode (or was skipped outright at its gate). *)
        Solution.Degraded ("skipped: " ^ Pacor_route.Budget.reason_label r)
    in
    stage_outcomes := (label, outcome) :: !stage_outcomes;
    result
  in
  let grid = problem.Problem.grid in
  let delta = problem.Problem.delta in
  let valve_cells =
    Point.Set.of_list (List.map (fun (v : Valve.t) -> v.position) problem.Problem.valves)
  in
  (* Candidate pin cells are reserved for escape channels: an internal
     channel routed over a pin would collide with whichever escape later
     terminates there. Every internal-routing stage treats them (like valve
     cells) as blockages; A* exempts each search's own endpoints, and the
     escape router receives the pin list separately. *)
  let valve_cells =
    List.fold_left
      (fun acc p -> Point.Set.add p acc)
      valve_cells problem.Problem.pins
  in
  (* Stage 1: valve clustering under broadcast addressing. *)
  match
    timed "clustering" (fun () ->
      Clustering.cluster ~seeds:problem.Problem.lm_clusters problem.Problem.valves)
  with
  | Error message -> Error { stage = "clustering"; message }
  | Ok partition ->
    let clusters = partition.Clustering.clusters in
    let initial_multi_clusters =
      List.length (List.filter (fun c -> Cluster.size c >= 2) clusters)
    in
    log config "clustering: %d clusters (%d multi-valve)" (List.length clusters)
      initial_multi_clusters;
    (* Hierarchical global stage: coarsen, plan corridors, and confine the
       detailed stages below through the workspace mask. [None] (flat
       mode, or a grid too small to tile) leaves every search untouched. *)
    let hplan =
      if hier then
        timed "hier-plan" (fun () ->
          Hier.plan ~alive ~workspace ~config problem clusters)
      else None
    in
    (match hplan with
     | Some plan ->
       log config
         "hier: %dx%d tiles, %d detail / %d escape / %d post corridor tiles, \
          %d/%d escapes assigned"
         (Pacor_grid.Tile_graph.tiles_x plan.Hier.tg)
         (Pacor_grid.Tile_graph.tiles_y plan.Hier.tg)
         (List.length plan.Hier.cluster_tiles)
         (List.length plan.Hier.escape_tiles)
         (List.length plan.Hier.post_tiles)
         plan.Hier.assigned plan.Hier.requests;
       Hier.install_detail workspace plan
     | None -> ());
    let next_id =
      ref (1 + List.fold_left (fun m (c : Cluster.t) -> max m c.id) 0 clusters)
    in
    let fresh_id () =
      let id = !next_id in
      incr next_id;
      id
    in
    (* Stage 2: length-matching cluster routing. *)
    let lm_out =
      timed "lm-routing" (fun () ->
        Cluster_route.route ~workspace ~config ~grid ~valve_cells clusters)
    in
    log config "lm routing: %d routed, %d demoted (%d negotiation rounds)"
      (List.length lm_out.Cluster_route.routed)
      (List.length lm_out.Cluster_route.demoted)
      lm_out.Cluster_route.iterations;
    (* Detour-first ablation: match lengths before escape routing. *)
    let lm_routed =
      match config.Config.variant with
      | Config.Detour_first when alive () ->
        let out =
          timed "detour" (fun () ->
            detour ~workspace ~grid ~delta ~theta:config.Config.theta ~valve_cells
              ~escapes:[] lm_out.Cluster_route.routed)
        in
        out.Detour_stage.updated
      | Config.Detour_first ->
        (* Budget already exhausted: detouring is pure refinement, skip it. *)
        timed "detour" (fun () -> lm_out.Cluster_route.routed)
      | Config.Full | Config.Without_selection -> lm_out.Cluster_route.routed
    in
    (* Stage 3: MST routing for ordinary and demoted clusters. *)
    let plain_clusters =
      List.filter (fun c -> not (Cluster.needs_matching c)) clusters
      @ lm_out.Cluster_route.demoted
    in
    let plain_out =
      timed "plain-routing" (fun () ->
        Plain_route.route_all ~workspace ~grid ~valve_cells
          ~already_claimed:(claims_of lm_routed) ~fresh_id plain_clusters)
    in
    log config "plain routing: %d routes (%d declustered)"
      (List.length plain_out.Plain_route.routed)
      plain_out.Plain_route.declustered;
    (* Stage 4: escape routing with rip-up / declustering. A failed
       length-matched tree first retries its remaining DME candidates (a
       different root placement often frees an exit toward the boundary);
       when candidates run out it is demoted to ordinary routing, and a
       failed ordinary cluster is declustered into singletons. *)
    let candidate_attempts : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let alternative_candidate ~others (r : Routed.t) =
      match r.shape with
      | Some (Routed.Pair _) | None -> None
      | Some (Routed.Tree { candidate = current; _ }) ->
        let usable p =
          Pacor_grid.Routing_grid.free grid p
          && (not (Point.Set.mem p valve_cells))
          && not (Point.Set.mem p others)
        in
        let candidates =
          Cluster_route.candidates_for ~config ~grid ~usable r.cluster
          |> List.filter (fun (c : Pacor_dme.Candidate.t) ->
            not (Point.equal c.root current.root && c.edges = current.edges))
        in
        (* Indexed once: [List.nth candidates tried] re-walks the candidate
           list on every rip-up round, and raises an undiagnosable
           [Failure _] if the enumeration ever shrinks between rounds. *)
        let candidates = Array.of_list candidates in
        let tried =
          Option.value ~default:0 (Hashtbl.find_opt candidate_attempts r.cluster.Cluster.id)
        in
        if tried >= Array.length candidates then None
        else begin
          Hashtbl.replace candidate_attempts r.cluster.Cluster.id (tried + 1);
          let cand = candidates.(tried) in
          let obstacles = Pacor_grid.Routing_grid.fresh_work_map grid in
          Point.Set.iter (fun p -> Pacor_grid.Obstacle_map.block obstacles p) valve_cells;
          Point.Set.iter (fun p -> Pacor_grid.Obstacle_map.block obstacles p) others;
          Cluster_route.route_single ~workspace ~config ~grid ~obstacles r.cluster cand
        end
    in
    (* Unrouted-with-diagnostics: what the escape stage reports when the
       budget dies before it can run — every cluster pinless, so stats and
       [Solution.validate] name exactly what is missing. *)
    let unrouted_escape routed_list =
      {
        Escape_stage.assignments =
          List.map (fun r -> { Escape_stage.routed = r; escape = None }) routed_list;
        failed_clusters =
          List.map (fun (r : Routed.t) -> r.cluster.Cluster.id) routed_list;
        escape_length = 0;
      }
    in
    (* The escape flow network is confined to the plan's NARROW corridor
       (assigned tile chains + start-tile rings), independently of the
       wider workspace mask the surrounding A*-based searches run under —
       the flow's per-augmentation cost is proportional to network size,
       so this is where the hierarchy's asymptotic win lives. *)
    let escape_corridor =
      match hplan with
      | None -> None
      | Some plan -> Some (Hier.escape_predicate workspace plan)
    in
    let escape_corridor_fallback =
      match hplan with
      | None -> None
      | Some plan -> Some (Hier.post_predicate workspace plan)
    in
    let rec escape_loop round routed_list =
      if not (alive ()) then Ok (routed_list, unrouted_escape routed_list)
      else
      match
        Escape_stage.run ~alive ~workspace ?sched:config.Config.sched
          ?corridor:escape_corridor
          ?corridor_fallback:escape_corridor_fallback ~grid
          ~pins:problem.Problem.pins routed_list
      with
      | Error message -> Error { stage = "escape"; message }
      | Ok out ->
        (* The budget is also polled inside the flow solve (once per
           augmentation round) and re-checked between rip-up rounds; a
           dead budget keeps the current partial assignment rather than
           ripping further. *)
        if out.Escape_stage.failed_clusters = [] || round >= config.Config.max_ripup_rounds
           || not (alive ())
        then Ok (routed_list, out)
        else begin
          log config "escape round %d: %d clusters unrouted, ripping up" round
            (List.length out.Escape_stage.failed_clusters);
          let failed_ids = out.Escape_stage.failed_clusters in
          let keep, failed =
            List.partition
              (fun (r : Routed.t) -> not (List.mem r.cluster.Cluster.id failed_ids))
              routed_list
          in
          let changed = ref false in
          (* Replace failed clusters one at a time: each reroute must avoid
             the {e new} claims of the replacements made before it (stale
             claims of two simultaneous reroutes can overlap). *)
          let replacements =
            let rec go done_ pending =
              match pending with
              | [] -> done_
              | (r : Routed.t) :: rest ->
                let others =
                  claims_of (keep @ done_ @ rest)
                in
                let replacement =
                  if Routed.is_length_matched_shape r then begin
                    changed := true;
                    match alternative_candidate ~others r with
                    | Some r' ->
                      log config
                        "escape rip-up: cluster %d retried with another candidate"
                        r.cluster.Cluster.id;
                      [ r' ]
                    | None ->
                      (* Rip the length-matched tree and reroute as ordinary
                         (higher rip-up cost, per Sec. 3). *)
                      reroute_as_plain ~workspace ~grid ~valve_cells ~others ~fresh_id
                        r.cluster
                  end
                  else if Cluster.size r.cluster >= 2 then begin
                    changed := true;
                    let singles = Cluster.split r.cluster ~fresh_id in
                    List.map Routed.make_singleton singles
                  end
                  else [ r ]
                in
                go (done_ @ replacement) rest
            in
            go [] failed
          in
          if !changed then escape_loop (round + 1) (keep @ replacements)
          else begin
            (* Every failed cluster is an unfixable singleton: it must be
               walled in by a neighbour's channels. Demote the adjacent
               length-matched "jailers" to compact ordinary routes and
               retry. *)
            let failed_cells =
              List.fold_left
                (fun acc (r : Routed.t) ->
                   List.fold_left
                     (fun s p -> Point.Set.add p s)
                     acc (Routed.start_cells r))
                Point.Set.empty failed
            in
            let near p =
              Point.Set.exists (fun q -> Point.chebyshev p q <= 2) failed_cells
            in
            (* Any neighbouring cluster with channels qualifies — a cluster
               demoted in an earlier round can be the jailer too. *)
            let jailers, free_keep =
              List.partition
                (fun (r : Routed.t) -> r.paths <> [] && Point.Set.exists near r.claimed)
                keep
            in
            if jailers = [] then Ok (routed_list, out)
            else begin
              log config "escape round %d: rerouting %d jailer clusters" round
                (List.length jailers);
              (* Reserve a ring around the jailed valves plus, with the
                 jailers ripped, one concrete corridor from each jailed
                 cluster to a pin — the reroutes must leave it open. *)
              let ring =
                Point.Set.fold
                  (fun p acc ->
                     List.fold_left
                       (fun s q -> Point.Set.add q s)
                       acc (Point.neighbours4 p))
                  failed_cells Point.Set.empty
              in
              let corridor_cells = ref Point.Set.empty in
              let corridor_for (r : Routed.t) =
                let work = Pacor_grid.Routing_grid.fresh_work_map grid in
                Point.Set.iter (Pacor_grid.Obstacle_map.block work) valve_cells;
                Point.Set.iter (Pacor_grid.Obstacle_map.block work) !corridor_cells;
                Point.Set.iter (Pacor_grid.Obstacle_map.block work)
                  (claims_of (free_keep @ List.filter (fun x -> x != r) failed));
                let spec = Pacor_route.Astar.obstacle_spec work in
                Pacor_route.Astar.search ~workspace ~grid ~spec
                  ~sources:(Routed.start_cells r) ~targets:problem.Problem.pins ()
              in
              (* Upgrade each jailed cluster: its corridor (minus the pin
                 itself) becomes an internal channel, so the next escape
                 round only needs the final hop and nobody can steal the
                 corridor. *)
              let failed =
                List.map
                  (fun (r : Routed.t) ->
                     match corridor_for r with
                     | Some path when Pacor_grid.Path.length path >= 1 ->
                       let pts = Pacor_grid.Path.points path in
                       let trimmed =
                         Pacor_grid.Path.of_points
                           (List.filteri (fun i _ -> i < List.length pts - 1) pts)
                       in
                       List.iter
                         (fun p -> corridor_cells := Point.Set.add p !corridor_cells)
                         (Pacor_grid.Path.points trimmed);
                       Routed.make_plain r.cluster
                         ~paths:(trimmed :: r.paths)
                         ~claimed:r.claimed
                     | Some _ | None -> r)
                  failed
              in
              let reserved = Point.Set.union ring !corridor_cells in
              let demoted =
                (* Sequential for the same staleness reason as above. *)
                let rec go done_ pending =
                  match pending with
                  | [] -> done_
                  | (r : Routed.t) :: rest ->
                    let others =
                      Point.Set.union reserved
                        (claims_of (free_keep @ failed @ done_ @ rest))
                    in
                    go
                      (done_
                       @ reroute_as_plain ~workspace ~grid ~valve_cells ~others ~fresh_id
                           r.cluster)
                      rest
                in
                go [] jailers
              in
              escape_loop (round + 1) (free_keep @ demoted @ failed)
            end
          end
        end
    in
    (* From the escape stage on, searches may legitimately travel between
       clusters and the boundary: widen the mask to the post corridor. *)
    (match hplan with Some plan -> Hier.install_post workspace plan | None -> ());
    (match timed "escape" (fun () -> escape_loop 0 (lm_routed @ plain_out.Plain_route.routed)) with
     | Error e -> Error e
     | Ok (routed_list, escape_out) ->
       let escape_of (r : Routed.t) =
         List.find_map
           (fun (a : Escape_stage.assignment) ->
              if a.routed.Routed.cluster.Cluster.id = r.cluster.Cluster.id then a.escape
              else None)
           escape_out.Escape_stage.assignments
       in
       (* Stage 5: final path detouring (skipped by Detour_first). *)
       let final_routed =
         match config.Config.variant with
         | Config.Detour_first -> routed_list
         | Config.Full | Config.Without_selection ->
           if not (alive ()) then timed "detour" (fun () -> routed_list)
           else
             let escapes = List.map escape_of routed_list in
             let out =
               timed "detour" (fun () ->
                 detour ~workspace ~grid ~delta ~theta:config.Config.theta ~valve_cells
                   ~escapes routed_list)
             in
             out.Detour_stage.updated
       in
       (* Per-cluster escape assignments, mutable so the rematch pass can
          replace them. *)
       let escapes : (int, Pacor_flow.Escape.routed option) Hashtbl.t = Hashtbl.create 16 in
       List.iter
         (fun (r : Routed.t) ->
            Hashtbl.replace escapes r.cluster.Cluster.id (escape_of r))
         final_routed;
       let escape_cells_of (r : Routed.t) =
         match Hashtbl.find_opt escapes r.cluster.Cluster.id with
         | Some (Some e) ->
           Point.Set.of_list (Pacor_grid.Path.points e.Pacor_flow.Escape.path)
         | Some None | None -> Point.Set.empty
       in
       (* Stage 5b (rematch): an unmatched tree cluster may be rescued by
          ripping it up entirely — channels and escape — and retrying the
          other DME candidates. This is the "clusters with length-matching
          constraint can also be ripped up, at higher cost" arm of Sec. 3's
          rip-up loop. *)
       let rematch_one committed (r : Routed.t) =
         let unmatched_tree =
           match r.shape, Routed.spread r with
           | Some (Routed.Tree _), Some s -> s > delta
           | (Some (Routed.Pair _) | None), _ | _, None -> false
         in
         let has_no_escape =
           Hashtbl.find_opt escapes r.cluster.Cluster.id = Some None
         in
         if (not unmatched_tree) || has_no_escape then []
         else begin
           let others =
             List.filter (fun (x : Routed.t) -> x.cluster.Cluster.id <> r.cluster.Cluster.id)
               committed
           in
           let forbidden_of rs =
             List.fold_left
               (fun acc (x : Routed.t) ->
                  Point.Set.union acc (Point.Set.union x.claimed (escape_cells_of x)))
               Point.Set.empty rs
           in
           let pins_available rs =
             let used =
               List.filter_map
                 (fun (x : Routed.t) ->
                    match Hashtbl.find_opt escapes x.cluster.Cluster.id with
                    | Some (Some e) -> Some e.Pacor_flow.Escape.pin
                    | Some None | None -> None)
                 rs
             in
             List.filter
               (fun p -> not (List.exists (Point.equal p) used))
               problem.Problem.pins
           in
           let forbidden = forbidden_of others in
           let available_pins = pins_available others in
           let usable_embed p =
             Pacor_grid.Routing_grid.free grid p
             && (not (Point.Set.mem p valve_cells))
             && not (Point.Set.mem p forbidden)
           in
           let obstacles = Pacor_grid.Routing_grid.fresh_work_map grid in
           Point.Set.iter (fun p -> Pacor_grid.Obstacle_map.block obstacles p) valve_cells;
           Point.Set.iter (fun p -> Pacor_grid.Obstacle_map.block obstacles p) forbidden;
           let candidates =
             Cluster_route.candidates_for ~config ~grid ~usable:usable_embed r.cluster
           in
           let try_candidate (cand : Pacor_dme.Candidate.t) =
             match
               Cluster_route.route_single ~workspace ~config ~grid ~obstacles r.cluster
                 cand
             with
             | None -> None
             | Some r' ->
               let claimed = Point.Set.union forbidden r'.claimed in
               (match
                  Escape_stage.single ~workspace ~grid ~claimed ~pins:available_pins
                    ~start_cells:(Routed.start_cells r') ()
                with
                | Some e ->
                  let blocked =
                    Point.Set.union valve_cells
                      (Point.Set.union forbidden
                         (Point.Set.of_list
                            (Pacor_grid.Path.points e.Pacor_flow.Escape.path)))
                  in
                  let r'', ok =
                    Detour_stage.detour_one ~workspace ~grid ~delta
                      ~theta:config.Config.theta ~blocked r'
                  in
                  if ok then Some (r'', e) else None
                | None -> None)
           in
           (* Last resort: rip this cluster and its nearest tree neighbour
              jointly — the neighbour's channels are usually what starves
              the detour stage. Both must come back matched. *)
           let try_joint () =
             let tree_neighbours =
               List.filter
                 (fun (x : Routed.t) ->
                    match x.shape with Some (Routed.Tree _) -> true | _ -> false)
                 others
             in
             let distance (x : Routed.t) =
               List.fold_left
                 (fun acc p ->
                    List.fold_left
                      (fun a q -> min a (Point.manhattan p q))
                      acc
                      (Cluster.positions x.cluster))
                 max_int
                 (Cluster.positions r.cluster)
             in
             let partner =
               List.fold_left
                 (fun acc x ->
                    match acc with
                    | Some (_, d) when d <= distance x -> acc
                    | _ -> Some (x, distance x))
                 None tree_neighbours
             in
             match partner with
             | None -> []
             | Some ((n : Routed.t), _) ->
               let rest =
                 List.filter
                   (fun (x : Routed.t) -> x.cluster.Cluster.id <> n.cluster.Cluster.id)
                   others
               in
               let forbidden2 = forbidden_of rest in
               let blocked_all = Point.Set.union valve_cells forbidden2 in
               let joint =
                 Cluster_route.route ~workspace ~config ~grid ~valve_cells:blocked_all
                   [ r.cluster; n.cluster ]
               in
               log config "rematch-joint: %d routed, %d demoted"
                 (List.length joint.Cluster_route.routed)
                 (List.length joint.Cluster_route.demoted);
               (match joint.Cluster_route.routed, joint.Cluster_route.demoted with
                | ([ _; _ ] as both), [] ->
                  let claims_both = claims_of both in
                  let requests =
                    List.mapi
                      (fun i (x : Routed.t) ->
                         { Pacor_flow.Escape.cluster_idx = i;
                           start_cells = Routed.start_cells x })
                      both
                  in
                  (match
                     Pacor_flow.Escape.route ~alive ~workspace ~grid
                       ~claimed:(Point.Set.union forbidden2 claims_both)
                       ~pins:(pins_available rest) requests
                   with
                   | Ok { Pacor_flow.Escape.routed = [ e0; e1 ]; failed = []; _ } ->
                     let escape_pts (e : Pacor_flow.Escape.routed) =
                       Point.Set.of_list (Pacor_grid.Path.points e.path)
                     in
                     let blocked =
                       List.fold_left Point.Set.union blocked_all
                         [ forbidden2; claims_both; escape_pts e0; escape_pts e1 ]
                     in
                     let out =
                       Detour_stage.run ~workspace ~grid ~delta
                         ~theta:config.Config.theta ~blocked both
                     in
                     log config "rematch-joint: detour matched %d of 2"
                       (List.length out.Detour_stage.matched_ids);
                     if List.length out.Detour_stage.matched_ids = 2 then begin
                       log config "rematch: clusters %d and %d jointly rerouted"
                         r.cluster.Cluster.id n.cluster.Cluster.id;
                       let by_idx =
                         List.map2
                           (fun (x : Routed.t) e -> (x.cluster.Cluster.id, e))
                           both [ e0; e1 ]
                       in
                       List.iter
                         (fun (id, e) -> Hashtbl.replace escapes id (Some e))
                         by_idx;
                       List.map
                         (fun (x : Routed.t) -> (x.cluster.Cluster.id, x))
                         out.Detour_stage.updated
                     end
                     else []
                   | Ok o ->
                     log config "rematch-joint: escape failed (%d routed)"
                       (List.length o.Pacor_flow.Escape.routed);
                     []
                   | Error msg ->
                     log config "rematch-joint: escape error %s" msg;
                     [])
                | _, _ -> [])
           in
           let rec try_all = function
             | [] -> try_joint ()
             | cand :: rest ->
               (match try_candidate cand with
                | Some (r'', e) ->
                  log config "rematch: cluster %d rescued with an alternative candidate"
                    r.cluster.Cluster.id;
                  Hashtbl.replace escapes r.cluster.Cluster.id (Some e);
                  [ (r.cluster.Cluster.id, r'') ]
                | None -> try_all rest)
           in
           try_all candidates
         end
       in
       let final_routed =
         match config.Config.variant with
         | Config.Detour_first -> final_routed
         | _ when not (alive ()) ->
           (* Rematch is the most expensive refinement; a dead budget skips
              it and the solution keeps whatever matching escape + detour
              achieved. *)
           timed "rematch" (fun () -> final_routed)
         | Config.Full | Config.Without_selection ->
           timed "rematch" (fun () ->
             let apply current replacements =
               List.map
                 (fun (x : Routed.t) ->
                    match List.assoc_opt x.cluster.Cluster.id replacements with
                    | Some x' -> x'
                    | None -> x)
                 current
             in
             let rec pass current = function
               | [] -> current
               | (r : Routed.t) :: rest ->
                 let r_now =
                   List.find
                     (fun (x : Routed.t) -> x.cluster.Cluster.id = r.cluster.Cluster.id)
                     current
                 in
                 let replacements = rematch_one current r_now in
                 pass (apply current replacements) rest
             in
             pass final_routed final_routed)
       in
       (* Assemble the solution. *)
       let clusters_out =
         List.map
           (fun (r : Routed.t) ->
              let escape =
                match Hashtbl.find_opt escapes r.cluster.Cluster.id with
                | Some e -> e
                | None -> escape_of r
              in
              let escape_len =
                match escape with
                | None -> 0
                | Some e -> Pacor_grid.Path.length e.Pacor_flow.Escape.path
              in
              let lengths =
                List.map
                  (fun (vid, l) -> (vid, l + escape_len))
                  (Routed.escape_anchor_lengths r)
              in
              let matched =
                Routed.is_length_matched_shape r
                && escape <> None
                && (match Routed.spread r with Some s -> s <= delta | None -> false)
              in
              { Solution.routed = r; escape; lengths; matched })
           final_routed
       in
       let runtime_s = Pacor_route.Clock.now_mono () -. t0 in
       log config "done in %.2fs" runtime_s;
       Ok
         {
           Solution.problem;
           (* Solutions outlive the run: strip the scheduler handle so a
              stored/repaired solution never references pool machinery
              (which may be shut down by then) and so solutions routed
              with different [--jobs] stay structurally identical. *)
           config = { config with Config.sched = None };
           clusters = clusters_out;
           initial_multi_clusters;
           runtime_s;
           stage_seconds = List.rev !timings;
           stage_search = List.rev !stage_search;
           stage_outcomes = List.rev !stage_outcomes;
           budget_exhausted = Pacor_route.Budget.exhausted budget;
         })

type hier_tier =
  | Flat_mode
  | Hier_identical
  | Hier_certified
  | Hier_race_won
  | Hier_race_flat
  | Hier_error_flat

let tier_name = function
  | Flat_mode -> "flat"
  | Hier_identical -> "identical"
  | Hier_certified -> "certified"
  | Hier_race_won -> "race-won"
  | Hier_race_flat -> "race-flat"
  | Hier_error_flat -> "error-flat"

type report = {
  solution : Solution.t;
  tier : hier_tier;
  hier_search : Pacor_route.Search_stats.snapshot option;
  flat_search : Pacor_route.Search_stats.snapshot option;
  clips : int;
  fallbacks : int;
  bidir : int;
}

let search_total (sol : Solution.t) =
  List.fold_left
    (fun acc (_, s) -> Pacor_route.Search_stats.add acc s)
    Pacor_route.Search_stats.zero sol.Solution.stage_search

let run_report ?(config = Config.default) ?workspace (problem : Problem.t) =
  (* Stage sharding is only deterministic when no search budget can trip
     mid-stage: a deadline or expansion cap fires after a number of
     operations that depends on interleaving, so a budgeted run must stay
     sequential. [Config.relax] produces limited configs, so retried runs
     gate themselves off automatically. *)
  let config =
    if Pacor_route.Budget.is_no_limits config.Config.limits then config
    else { config with Config.sched = None }
  in
  (* One search workspace for the whole problem: every stage's A* /
     bounded-A* calls reuse its arrays (O(1) epoch reset, no grid-sized
     allocation per search) and accumulate into its counters. A caller
     running many problems (a batch worker) passes its own to keep the
     warm arrays across instances; it must not share one workspace
     between concurrent runs. *)
  let workspace =
    match workspace with
    | Some w -> w
    | None -> Pacor_route.Workspace.create ()
  in
  let cells = Pacor_grid.Routing_grid.cells problem.Problem.grid in
  (* One-time growth to the instance's size: a cold workspace on a
     1000x1000+ grid pays a single allocation event here instead of a
     doubling cascade inside the first searches; a pooled workspace grows
     monotonically and reuses its arrays across differently-sized
     problems. *)
  Pacor_route.Workspace.prepare workspace ~cells;
  (* The budget rides on the workspace so every search this run performs —
     and nothing outside it — is charged; the caller's budget (normally
     unlimited) is restored on every exit path. *)
  let budget = Pacor_route.Budget.create config.Config.limits in
  let saved = Pacor_route.Workspace.budget workspace in
  Pacor_route.Workspace.set_budget workspace budget;
  Pacor_route.Budget.arm budget;
  Fun.protect
    ~finally:(fun () ->
      Pacor_route.Workspace.corridor_clear workspace;
      Pacor_route.Workspace.set_budget workspace saved)
    (fun () ->
      let attempt ~hier =
        try route_inner ~config ~workspace ~budget ~hier problem with
        | Stack_overflow ->
          Error { stage = "internal"; message = "stack overflow" }
        | exn -> Error { stage = "internal"; message = Printexc.to_string exn }
      in
      let report ?hier_search ?flat_search ?(clips = 0) ?(fallbacks = 0)
          ?(bidir = 0) tier solution =
        { solution; tier; hier_search; flat_search; clips; fallbacks; bidir }
      in
      if not (Config.hier_enabled config ~cells) then
        Result.map
          (fun sol -> report ~flat_search:(search_total sol) Flat_mode sol)
          (attempt ~hier:false)
      else begin
        (* The never-worse ladder (see {!Hier}): confined run first, then
           prove it safe as cheaply as possible. *)
        Pacor_route.Workspace.corridor_reset_counters workspace;
        let hier_result = attempt ~hier:true in
        Pacor_route.Workspace.corridor_clear workspace;
        let clips = Pacor_route.Workspace.corridor_clips workspace in
        let fallbacks = Pacor_route.Workspace.corridor_fallbacks workspace in
        let bidir = Pacor_route.Workspace.corridor_bidir workspace in
        let report = report ~clips ~fallbacks ~bidir in
        log config "hier: clips=%d fallbacks=%d bidir=%d" clips fallbacks bidir;
        match hier_result with
        | Error _ ->
          (* A structural failure under confinement (not plain congestion
             — that returns [Ok] with failures listed): rerun flat. *)
          Result.map
            (fun sol -> report ~flat_search:(search_total sol) Hier_error_flat sol)
            (attempt ~hier:false)
        | Ok sol ->
          let hier_search = search_total sol in
          log config "hier attempt: %a" Pacor_route.Search_stats.pp hier_search;
          if config.Config.verbose then
            List.iter
              (fun (stage, s) ->
                log config "hier attempt %-14s %a" stage
                  Pacor_route.Search_stats.pp s)
              sol.Solution.stage_search;
          if clips = 0 && fallbacks = 0 && bidir = 0 then begin
            (* Tier 1: confinement never changed a relaxation; this IS the
               flat solution. *)
            log config "hier ladder: byte-identical to flat";
            Ok (report ~hier_search Hier_identical sol)
          end
          else begin
            match Hier.certify_failure sol with
            | None ->
              (* Tier 2: lower bounds prove no flat run can beat it. *)
              log config "hier ladder: certified optimal-under-bounds";
              Ok (report ~hier_search Hier_certified sol)
            | Some reason ->
              (* Tier 3: race. Keep the hierarchical solution only when
                 strictly better under {!Hier.score}. *)
              log config "hier ladder: uncertified (%s), racing flat" reason;
              (match attempt ~hier:false with
               | Error _ -> Ok (report ~hier_search Hier_race_won sol)
               | Ok flat_sol ->
                 let flat_search = search_total flat_sol in
                 let keep_hier = Hier.score sol > Hier.score flat_sol in
                 log config "hier ladder: raced flat, kept %s"
                   (if keep_hier then "hierarchical" else "flat");
                 if keep_hier then
                   Ok (report ~hier_search ~flat_search Hier_race_won sol)
                 else Ok (report ~hier_search ~flat_search Hier_race_flat flat_sol))
          end
      end)

let run ?config ?workspace problem =
  Result.map (fun r -> r.solution) (run_report ?config ?workspace problem)
