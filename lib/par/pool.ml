type worker = {
  index : int;
  workspace : Pacor_route.Workspace.t;
}

type t = {
  n : int;
  queue : (worker -> unit) Queue.t;  (* tasks never raise: wrapped by map_ctx *)
  mutex : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  workers : worker array;
  mutable domains : unit Domain.t array;
}

let worker_workspace w = w.workspace
let worker_index w = w.index
let jobs t = t.n

(* Workers block on [work_available]; a closed pool with a drained queue
   is the only exit. The task body runs outside the lock. *)
let rec worker_loop t (w : worker) =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task w;
    worker_loop t w
  end

let create ~jobs:n =
  if n < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      workers =
        Array.init n (fun index ->
          { index; workspace = Pacor_route.Workspace.create () });
      domains = [||];
    }
  in
  t.domains <-
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) t.workers;
  t

(* The shared scatter/gather core: every task settles (result or captured
   exception) before this returns, so a raising task can neither wedge the
   queue nor leak a domain — the callers only differ in how they report
   the captured exceptions. *)
let run_tasks t label f xs =
  if t.closed then invalid_arg (label ^ ": pool has been shut down");
  match xs with
  | [] -> ([||], [||])
  | xs ->
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    let task i (w : worker) =
      (match f w inputs.(i) with
       | r -> results.(i) <- Some r
       | exception e ->
         failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work_available;
    while !remaining > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (results, failures)

let map_ctx t f xs =
  let results, failures = run_tasks t "Pool.map_ctx" f xs in
  (* Deterministic failure reporting: the earliest-indexed exception
     wins, whatever order the workers actually hit theirs in. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    failures;
  Array.to_list (Array.map Option.get results)

let try_map_ctx t f xs =
  let results, failures = run_tasks t "Pool.try_map_ctx" f xs in
  List.init (Array.length results) (fun i ->
      match failures.(i) with
      | Some (e, _) -> Error e
      | None -> Ok (Option.get results.(i)))

let search_stats t =
  Array.fold_left
    (fun acc (w : worker) ->
       Pacor_route.Search_stats.add acc
         (Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats w.workspace)))
    Pacor_route.Search_stats.zero t.workers

let shutdown t =
  let was_closed =
    Mutex.lock t.mutex;
    let c = t.closed in
    t.closed <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    c
  in
  if not was_closed then Array.iter Domain.join t.domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ~jobs f xs = with_pool ~jobs (fun t -> map_ctx t (fun _ x -> f x) xs)
