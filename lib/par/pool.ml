type worker = {
  index : int;
  workspace : Pacor_route.Workspace.t;
}

type t = {
  n : int;
  sched : Pacor_sched.Sched.t;
  (* Treiber stack of idle worker contexts. At most [Sched.domains] tasks
     execute at once and [Sched.domains <= n], so an executing task always
     finds a free context — the spin in [acquire] only ever covers the
     window between a finishing task's release and our pop. *)
  free : worker list Atomic.t;
  workers : worker array;
  closed : bool Atomic.t;
}

let worker_workspace w = w.workspace
let worker_index w = w.index
let jobs t = t.n
let sched t = t.sched

(* Logical workers beyond the physical core count only add domain
   time-slicing and stop-the-world GC synchronisation — measured as the
   old pool's 0.9x "speedup" at jobs=4 on one core. Contexts stay at
   [jobs] (indices, warm workspaces); domains are clamped to the
   hardware unless the caller explicitly oversubscribes. *)
let default_domains ~jobs =
  min jobs (Domain.recommended_domain_count ())

let create ?domains ~jobs:n () =
  if n < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let d =
    match domains with
    | None -> default_domains ~jobs:n
    | Some d ->
      if d < 1 || d > n then
        invalid_arg "Pool.create: domains must be in [1, jobs]";
      d
  in
  let workers =
    Array.init n (fun index ->
      { index; workspace = Pacor_route.Workspace.create () })
  in
  {
    n;
    sched = Pacor_sched.Sched.create ~domains:d;
    free = Atomic.make (Array.to_list workers);
    workers;
    closed = Atomic.make false;
  }

let rec acquire t =
  match Atomic.get t.free with
  | [] ->
    Domain.cpu_relax ();
    acquire t
  | w :: rest as cur ->
    if Atomic.compare_and_set t.free cur rest then w else acquire t

let rec release t w =
  let cur = Atomic.get t.free in
  if not (Atomic.compare_and_set t.free cur (w :: cur)) then release t w

(* The shared scatter/gather core: every task settles (result or captured
   exception) before this returns, so a raising task can neither wedge the
   scheduler nor leak a domain — the callers only differ in how they
   report the captured exceptions. Each call synchronises on its own
   mutex/condition pair: concurrent [map] callers on one pool cannot
   steal each other's wakeups, because nothing is shared between calls
   but the scheduler itself. *)
let run_tasks t label f xs =
  if Atomic.get t.closed then invalid_arg (label ^ ": pool has been shut down");
  match xs with
  | [] -> ([||], [||])
  | xs ->
    let inputs = Array.of_list xs in
    let n = Array.length inputs in
    let results = Array.make n None in
    let failures = Array.make n None in
    let remaining = Atomic.make n in
    let call_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let task i () =
      let w = acquire t in
      (match f w inputs.(i) with
       | r -> results.(i) <- Some r
       | exception e ->
         failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      release t w;
      (* The decrement publishes this task's writes (SC atomic); the
         last task signals under the call's own mutex, and the waiter
         re-checks the counter under that mutex — no lost wakeup. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock call_mutex;
        Condition.broadcast all_done;
        Mutex.unlock call_mutex
      end
    in
    Pacor_sched.Sched.submit_batch t.sched (Array.init n task);
    Mutex.lock call_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait all_done call_mutex
    done;
    Mutex.unlock call_mutex;
    (results, failures)

let map_ctx t f xs =
  let results, failures = run_tasks t "Pool.map_ctx" f xs in
  (* Deterministic failure reporting: the earliest-indexed exception
     wins, whatever order the workers actually hit theirs in. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    failures;
  Array.to_list (Array.map Option.get results)

let try_map_ctx t f xs =
  let results, failures = run_tasks t "Pool.try_map_ctx" f xs in
  List.init (Array.length results) (fun i ->
      match failures.(i) with
      | Some (e, _) -> Error e
      | None -> Ok (Option.get results.(i)))

let search_stats t =
  Array.fold_left
    (fun acc (w : worker) ->
       Pacor_route.Search_stats.add acc
         (Pacor_route.Search_stats.snapshot (Pacor_route.Workspace.stats w.workspace)))
    Pacor_route.Search_stats.zero t.workers

let sched_stats t = Pacor_sched.Sched.stats t.sched

let shutdown t =
  if not (Atomic.exchange t.closed true) then Pacor_sched.Sched.shutdown t.sched

let with_pool ?domains ~jobs f =
  let t = create ?domains ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ~jobs f xs = with_pool ~jobs (fun t -> map_ctx t (fun _ x -> f x) xs)
