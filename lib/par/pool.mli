(** Fixed-size worker pool for batch routing, backed by the
    {!Pacor_sched.Sched} work-stealing scheduler.

    A pool has [jobs] {e logical} worker contexts — each owning a private
    routing context, a {!Pacor_route.Workspace.t} (and the
    {!Pacor_route.Search_stats.t} implicit in it) — but spawns only
    [min jobs (Domain.recommended_domain_count ())] domains by default.
    Logical contexts are acquired from a lock-free free-list for the
    duration of each task, so a task still never shares a workspace with
    a concurrently executing task, workers' warm arrays persist across
    the tasks they execute, and [jobs > cores] no longer oversubscribes
    the machine with idle domains fighting the GC.

    Tasks are injected into the scheduler; inside a task, code may fork
    context-free subtasks with {!Pacor_sched.Sched.scope} /
    [parallel_for] on {!sched} — those are stolen across the same
    domains, which is how the intra-instance stage sharding gets its
    parallelism without extra domains.

    Determinism contract: {!map} and {!map_ctx} return results in input
    order, regardless of which worker ran which task or in what order
    tasks finished. A task that raises has its exception (with backtrace)
    captured and re-raised at the join point — the exception of the
    earliest-indexed failing task wins, so failure reporting is
    deterministic too. The remaining tasks still run to completion; a
    failing task never wedges the pool.

    Each [map] call synchronises on its own mutex/condition pair, so
    concurrent [map_ctx] calls from different domains on one pool are
    safe (they interleave on the scheduler but cannot lose each other's
    completion wakeups). {!shutdown} joins every domain. *)

type t

type worker
(** The per-task routing context handed to {!map_ctx} callbacks. *)

val worker_workspace : worker -> Pacor_route.Workspace.t
(** The context's private search workspace. Valid only inside the task
    callback the context was leased to. *)

val worker_index : worker -> int
(** Stable index in [0, jobs): which logical context is executing the
    task. *)

val create : ?domains:int -> jobs:int -> unit -> t
(** Creates [jobs] logical worker contexts and spawns
    [min jobs (Domain.recommended_domain_count ())] scheduler domains —
    or exactly [domains] when given (tests and benches use this to force
    oversubscription on small machines). Concurrently executing tasks
    never exceed the domain count, which never exceeds [jobs], so a task
    can always acquire a free context without blocking.
    @raise Invalid_argument if [jobs < 1] or [domains] is outside
    [1, jobs]. *)

val jobs : t -> int

val sched : t -> Pacor_sched.Sched.t
(** The underlying scheduler, for forking context-free subtasks from
    inside a task (stage sharding) or for introspection. *)

val map_ctx : t -> (worker -> 'a -> 'b) -> 'a list -> 'b list
(** [map_ctx pool f xs] runs [f worker x] for every element on the pool
    and blocks until all are done. Results come back in input order.
    Raises the earliest-indexed task exception, if any, after all tasks
    have settled.
    @raise Invalid_argument on a pool that has been shut down. *)

val try_map_ctx : t -> (worker -> 'a -> 'b) -> 'a list -> ('b, exn) result list
(** Fault-isolated {!map_ctx}: a raising task yields [Error exn] in its
    input-order slot instead of poisoning the whole call, and every other
    task still runs to completion. The pool stays healthy — no domain is
    lost, and [shutdown] joins normally afterwards.
    @raise Invalid_argument on a pool that has been shut down. *)

val search_stats : t -> Pacor_route.Search_stats.snapshot
(** Sum of every worker context's workspace counters since [create].
    Only meaningful while the pool is quiescent (no [map_ctx] in
    flight). *)

val sched_stats : t -> Pacor_sched.Sched.stats
(** Scheduler counters (steals / parks / executed tasks) since
    [create]. Exact only while the pool is quiescent. *)

val shutdown : t -> unit
(** Shuts the scheduler down and joins all worker domains. Idempotent. *)

val with_pool : ?domains:int -> jobs:int -> (t -> 'b) -> 'b
(** [with_pool ~jobs f] brackets [create]/[shutdown] around [f]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs] around a [map_ctx] that
    ignores the worker context. [map ~jobs:1] still routes the work
    through a single worker domain, preserving the exception and
    ordering semantics of the parallel path. *)
