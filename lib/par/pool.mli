(** Fixed-size domain worker pool for batch routing.

    A pool spawns [jobs] OCaml 5 domains over one [Mutex]/[Condition]
    task queue. Each worker owns its private routing context — a
    {!Pacor_route.Workspace.t} (and the {!Pacor_route.Search_stats.t}
    implicit in it) — satisfying the workspace's single-search-at-a-time
    contract without any locking on the hot path: tasks running on
    different domains never share a workspace, and a worker's warm arrays
    persist across the tasks it executes.

    Determinism contract: {!map} and {!map_ctx} return results in input
    order, regardless of which worker ran which task or in what order
    tasks finished. A task that raises has its exception (with backtrace)
    captured and re-raised at the join point — the exception of the
    earliest-indexed failing task wins, so failure reporting is
    deterministic too. The remaining tasks still run to completion; a
    failing task never wedges the pool.

    The pool is quiescent between [map] calls; {!shutdown} closes the
    queue and joins every domain. All operations must be called from the
    owning (spawning) domain. *)

type t

type worker
(** The per-domain routing context handed to {!map_ctx} callbacks. *)

val worker_workspace : worker -> Pacor_route.Workspace.t
(** The calling worker's private search workspace. Valid only inside the
    task callback running on that worker. *)

val worker_index : worker -> int
(** Stable index in [0, jobs): which worker is executing the task. *)

val create : jobs:int -> t
(** Spawns [jobs] worker domains (plus their workspaces).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val map_ctx : t -> (worker -> 'a -> 'b) -> 'a list -> 'b list
(** [map_ctx pool f xs] runs [f worker x] for every element on the pool
    and blocks until all are done. Results come back in input order.
    Raises the earliest-indexed task exception, if any, after all tasks
    have settled.
    @raise Invalid_argument on a pool that has been shut down. *)

val try_map_ctx : t -> (worker -> 'a -> 'b) -> 'a list -> ('b, exn) result list
(** Fault-isolated {!map_ctx}: a raising task yields [Error exn] in its
    input-order slot instead of poisoning the whole call, and every other
    task still runs to completion. The pool stays healthy — no domain is
    lost, and [shutdown] joins normally afterwards.
    @raise Invalid_argument on a pool that has been shut down. *)

val search_stats : t -> Pacor_route.Search_stats.snapshot
(** Sum of every worker's workspace counters since [create]. Only
    meaningful while the pool is quiescent (no [map_ctx] in flight). *)

val shutdown : t -> unit
(** Closes the queue and joins all worker domains. Idempotent. *)

val with_pool : jobs:int -> (t -> 'b) -> 'b
(** [with_pool ~jobs f] brackets [create]/[shutdown] around [f]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ~jobs] around a [map_ctx] that
    ignores the worker context. [map ~jobs:1] still routes the work
    through a single worker domain, preserving the exception and
    ordering semantics of the parallel path. *)
