(** Sharded batch routing: route a list of named problem instances across
    a {!Pool} of domains and report per-instance outcomes plus aggregate
    throughput figures.

    This is the batch shape of the paper's whole evaluation — Table 2 is
    seven designs under three flow variants, the delta sweep re-routes one
    instance per threshold, and a corpus directory is one job per file —
    so every job carries its own [config] and the runner is agnostic to
    where the problems came from.

    Fault isolation: jobs fail individually. A job whose engine run
    errors, whose solution fails validation, or whose worker task raises
    produces an [Error job_error] in its own slot; every other job still
    completes, and the pool survives. Failed jobs are retried up to
    [retries] times under a progressively relaxed config
    ({!Pacor.Config.relax}: doubled budget limits, roomier detour and
    rip-up bounds); jobs that fail every attempt are listed in the
    summary's quarantine.

    Determinism contract: {!run} returns items in input order, and each
    item's solution is byte-identical to what a sequential
    [Pacor.Engine.run] on the same [(config, problem)] produces (the
    engine is deterministic and re-entrant; workers never share mutable
    state). Only the timing fields ([elapsed_s], and the solutions' own
    [runtime_s]/[stage_seconds]) vary between runs — with the caveat that
    a wall-clock [timeout_s] budget limit makes the affected job's
    degradation point timing-dependent; expansion and iteration caps
    stay fully deterministic. *)

type job = {
  name : string;
  problem : Pacor.Problem.t;
  config : Pacor.Config.t;
}

val job : ?config:Pacor.Config.t -> name:string -> Pacor.Problem.t -> job
(** [config] defaults to {!Pacor.Config.default} (the full PACOR flow). *)

type job_error =
  | Engine_error of { stage : string; message : string }
      (** structural engine failure ([stage = "internal"] for a caught
          engine exception) *)
  | Budget_exhausted of { reason : string; violations : string list }
      (** the budget tripped ({!Pacor_route.Budget.reason_label}) and the
          degraded solution does not validate — more budget might route
          this instance, which is what a relaxed retry probes *)
  | Invalid of string list
      (** the solution fails {!Pacor.Solution.validate} with no budget
          pressure: infeasible or congested beyond the flow's fallbacks *)
  | Crashed of string
      (** an exception escaped the worker task — pathological, since the
          engine itself is total *)

val error_to_string : job_error -> string

type item = {
  name : string;
  solution : (Pacor.Solution.t, job_error) result;
  attempts : int;  (** 1 = succeeded (or permanently failed) first try *)
  degraded : bool;
      (** the winning solution validates but some stage outcome is not
          [Completed] (see {!Pacor.Solution.stage_outcomes}) *)
  elapsed_s : float;
      (** wall-clock time this instance took on its worker, all attempts
          included *)
}

type summary = {
  items : item list;        (** input order, independent of scheduling *)
  jobs : int;               (** worker domains used *)
  elapsed_s : float;        (** wall-clock time for the whole batch *)
  sequential_s : float;
      (** sum of per-item [elapsed_s]: the single-worker wall-clock
          estimate that {!speedup} compares against *)
  search : Pacor_route.Search_stats.snapshot;
      (** per-stage search counters summed over every successful solution
          in the batch — a deterministic measure of total routing work,
          except [grid_allocs], which counts workspace warm-up allocation
          events and so depends on how instances land on (warm or cold)
          workers *)
  degraded_jobs : int;      (** successful but budget-degraded jobs *)
  retried_jobs : int;       (** jobs that needed more than one attempt *)
  quarantined : item list;
      (** the permanently failed subset of [items], in input order *)
}

val speedup : summary -> float
(** [sequential_s /. elapsed_s]; bounded by the number of cores the OS
    actually grants, whatever [jobs] says. *)

val run : ?jobs:int -> ?retries:int -> job list -> summary
(** Routes every job on a fresh pool of [jobs] domains (default 1) and
    tears the pool down. [retries] (default 0) bounds relaxed re-attempts
    per failing job.
    @raise Invalid_argument if [retries < 0]. *)

val run_on : ?retries:int -> Pool.t -> job list -> summary
(** Like {!run} on an existing pool (its workers keep their warm
    workspaces across calls). *)

val run_problems :
  ?jobs:int ->
  ?retries:int ->
  ?config:Pacor.Config.t ->
  (string * Pacor.Problem.t) list ->
  summary
(** Convenience: every instance under one shared config. *)

val load_dir : string -> ((string * Pacor.Problem.t) list, string) result
(** Loads every [*.chip] problem file in a directory, sorted by file name
    (instance name = base name without extension). Errors on an unreadable
    directory, an unparsable file, or a directory with no [*.chip] files. *)

val pp_summary : Format.formatter -> summary -> unit
(** Per-instance table (name, matched/clusters, total length, completion,
    time, degradation marker) followed by the aggregate line with elapsed,
    speedup and the summed search counters, the degradation/retry
    counters, and the quarantine report. *)
