(** Sharded batch routing: route a list of named problem instances across
    a {!Pool} of domains and report per-instance solutions plus aggregate
    throughput figures.

    This is the batch shape of the paper's whole evaluation — Table 2 is
    seven designs under three flow variants, the delta sweep re-routes one
    instance per threshold, and a corpus directory is one job per file —
    so every job carries its own [config] and the runner is agnostic to
    where the problems came from.

    Determinism contract: {!run} returns items in input order, and each
    item's solution is byte-identical to what a sequential
    [Pacor.Engine.run] on the same [(config, problem)] produces (the
    engine is deterministic and re-entrant; workers never share mutable
    state). Only the timing fields ([elapsed_s], and the solutions' own
    [runtime_s]/[stage_seconds]) vary between runs. *)

type job = {
  name : string;
  problem : Pacor.Problem.t;
  config : Pacor.Config.t;
}

val job : ?config:Pacor.Config.t -> name:string -> Pacor.Problem.t -> job
(** [config] defaults to {!Pacor.Config.default} (the full PACOR flow). *)

type item = {
  name : string;
  solution : (Pacor.Solution.t, string) result;
      (** [Error] carries ["<stage>: <message>"] for structural engine
          failures; congestion shows up in the solution stats instead. *)
  elapsed_s : float;  (** wall-clock time this instance took on its worker *)
}

type summary = {
  items : item list;        (** input order, independent of scheduling *)
  jobs : int;               (** worker domains used *)
  elapsed_s : float;        (** wall-clock time for the whole batch *)
  sequential_s : float;
      (** sum of per-item [elapsed_s]: the single-worker wall-clock
          estimate that {!speedup} compares against *)
  search : Pacor_route.Search_stats.snapshot;
      (** per-stage search counters summed over every solution in the
          batch — a deterministic measure of total routing work, except
          [grid_allocs], which counts workspace warm-up allocation events
          and so depends on how instances land on (warm or cold) workers *)
}

val speedup : summary -> float
(** [sequential_s /. elapsed_s]; bounded by the number of cores the OS
    actually grants, whatever [jobs] says. *)

val run : ?jobs:int -> job list -> summary
(** Routes every job on a fresh pool of [jobs] domains (default 1) and
    tears the pool down. Exceptions escaping the engine propagate with
    the earliest failing job's backtrace. *)

val run_on : Pool.t -> job list -> summary
(** Like {!run} on an existing pool (its workers keep their warm
    workspaces across calls). *)

val run_problems :
  ?jobs:int ->
  ?config:Pacor.Config.t ->
  (string * Pacor.Problem.t) list ->
  summary
(** Convenience: every instance under one shared config. *)

val load_dir : string -> ((string * Pacor.Problem.t) list, string) result
(** Loads every [*.chip] problem file in a directory, sorted by file name
    (instance name = base name without extension). Errors on an unreadable
    directory, an unparsable file, or a directory with no [*.chip] files. *)

val pp_summary : Format.formatter -> summary -> unit
(** Per-instance table (name, matched/clusters, total length, completion,
    time) followed by the aggregate line with elapsed, speedup and the
    summed search counters. *)
