type job = {
  name : string;
  problem : Pacor.Problem.t;
  config : Pacor.Config.t;
}

let job ?(config = Pacor.Config.default) ~name problem = { name; problem; config }

type job_error =
  | Engine_error of { stage : string; message : string }
  | Budget_exhausted of { reason : string; violations : string list }
  | Invalid of string list
  | Crashed of string

let error_to_string = function
  | Engine_error { stage; message } -> Printf.sprintf "%s: %s" stage message
  | Budget_exhausted { reason; violations } ->
    Printf.sprintf "budget exhausted (%s): %d violation(s)" reason
      (List.length violations)
  | Invalid violations ->
    Printf.sprintf "invalid solution: %s" (String.concat "; " violations)
  | Crashed message -> Printf.sprintf "crashed: %s" message

type item = {
  name : string;
  solution : (Pacor.Solution.t, job_error) result;
  attempts : int;
  degraded : bool;
  elapsed_s : float;
}

type summary = {
  items : item list;
  jobs : int;
  elapsed_s : float;
  sequential_s : float;
  search : Pacor_route.Search_stats.snapshot;
  degraded_jobs : int;
  retried_jobs : int;
  quarantined : item list;
}

let speedup s = if s.elapsed_s > 0.0 then s.sequential_s /. s.elapsed_s else 1.0

(* A job succeeds when the engine returns a solution that passes the
   independent validator. An invalid solution produced under an exhausted
   budget is a budget failure (the instance might be routable with more
   room — that is what a relaxed retry probes); an invalid solution under
   no budget pressure is structural infeasibility or congestion. *)
let classify (result : (Pacor.Solution.t, Pacor.Engine.error) result) =
  match result with
  | Error (e : Pacor.Engine.error) ->
    Error (Engine_error { stage = e.stage; message = e.message })
  | Ok sol ->
    (match Pacor.Solution.validate sol with
     | Ok () -> Ok sol
     | Error violations ->
       (match sol.Pacor.Solution.budget_exhausted with
        | Some reason ->
          Error
            (Budget_exhausted
               { reason = Pacor_route.Budget.reason_label reason; violations })
        | None -> Error (Invalid violations)))

(* One job, fault-isolated: the engine is total, but any residual exception
   (engine bug, OOM) is still confined to this item. Failures retry up to
   [retries] times under a progressively relaxed config; a success on any
   attempt wins. *)
let route_one ~retries ?sched (w : Pool.worker) (j : job) =
  let t0 = Pacor_route.Clock.now_mono () in
  (* Jobs inherit the pool's scheduler unless they brought their own, so
     a batch shards inner stages across the same domains that run the
     jobs — idle domains (fewer ready jobs than workers) pick up forked
     subtasks instead of parking. Safe because sharded stages are
     byte-identical to sequential ones, and the engine strips the
     scheduler whenever a job's budget is armed. *)
  let j =
    match j.config.Pacor.Config.sched, sched with
    | None, Some _ -> { j with config = { j.config with sched } }
    | _ -> j
  in
  let attempt config =
    match
      Pacor.Engine.run ~config ~workspace:(Pool.worker_workspace w) j.problem
    with
    | result -> classify result
    | exception exn -> Error (Crashed (Printexc.to_string exn))
  in
  let rec go config attempts =
    match attempt config with
    | Ok sol -> (Ok sol, attempts, Pacor.Solution.degraded sol)
    | Error _ when attempts <= retries ->
      go (Pacor.Config.relax config) (attempts + 1)
    | Error _ as e -> (e, attempts, false)
  in
  let solution, attempts, degraded = go j.config 1 in
  { name = j.name; solution; attempts; degraded;
    elapsed_s = Pacor_route.Clock.now_mono () -. t0 }

let solution_search (sol : Pacor.Solution.t) =
  List.fold_left
    (fun acc (_, snap) -> Pacor_route.Search_stats.add acc snap)
    Pacor_route.Search_stats.zero sol.Pacor.Solution.stage_search

let summarize ~jobs ~elapsed_s items =
  {
    items;
    jobs;
    elapsed_s;
    sequential_s =
      List.fold_left (fun acc (i : item) -> acc +. i.elapsed_s) 0.0 items;
    (* Summing the solutions' own per-stage snapshots (rather than the
       workers' live counters) keeps the aggregate deterministic and
       independent of pool reuse. *)
    search =
      List.fold_left
        (fun acc i ->
           match i.solution with
           | Ok sol -> Pacor_route.Search_stats.add acc (solution_search sol)
           | Error _ -> acc)
        Pacor_route.Search_stats.zero items;
    degraded_jobs = List.length (List.filter (fun i -> i.degraded) items);
    retried_jobs = List.length (List.filter (fun i -> i.attempts > 1) items);
    quarantined = List.filter (fun i -> Result.is_error i.solution) items;
  }

let run_on ?(retries = 0) pool jobs_list =
  if retries < 0 then invalid_arg "Batch.run_on: retries must be >= 0";
  let t0 = Pacor_route.Clock.now_mono () in
  (* [route_one] already confines engine exceptions, so the [Error] arm
     only fires on a failure in the item plumbing itself — even then the
     damage stays within this job's slot. *)
  let items =
    List.map2
      (fun (j : job) -> function
        | Ok item -> item
        | Error exn ->
          { name = j.name;
            solution = Error (Crashed (Printexc.to_string exn));
            attempts = 1; degraded = false; elapsed_s = 0.0 })
      jobs_list
      (Pool.try_map_ctx pool (route_one ~retries ~sched:(Pool.sched pool)) jobs_list)
  in
  summarize ~jobs:(Pool.jobs pool) ~elapsed_s:(Pacor_route.Clock.now_mono () -. t0) items

let run ?(jobs = 1) ?retries jobs_list =
  Pool.with_pool ~jobs (fun pool -> run_on ?retries pool jobs_list)

let run_problems ?jobs ?retries ?config named =
  run ?jobs ?retries (List.map (fun (name, problem) -> job ?config ~name problem) named)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
    let chips =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".chip")
      |> List.sort String.compare
    in
    if chips = [] then Error (Printf.sprintf "no *.chip files in %s" dir)
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest ->
          let path = Filename.concat dir f in
          (match Pacor.Problem_io.load ~path with
           | Error e -> Error (Printf.sprintf "%s: %s" path e)
           | Ok p -> go ((Filename.chop_suffix f ".chip", p) :: acc) rest)
      in
      go [] chips

let pp_summary ppf s =
  Format.fprintf ppf "%-22s %10s %10s %11s %8s@." "instance" "matched" "total_len"
    "completion" "time";
  List.iter
    (fun i ->
       match i.solution with
       | Error e -> Format.fprintf ppf "%-22s FAILED: %s@." i.name (error_to_string e)
       | Ok sol ->
         let st = Pacor.Solution.stats sol in
         Format.fprintf ppf "%-22s %6d/%-3d %10d %10.0f%% %7.2fs%s@." i.name
           st.Pacor.Solution.matched_clusters st.Pacor.Solution.clusters
           st.Pacor.Solution.total_length
           (100.0 *. st.Pacor.Solution.completion)
           i.elapsed_s
           (if i.degraded then "  (degraded)" else ""))
    s.items;
  Format.fprintf ppf
    "batch: %d instances on %d domains in %.2fs (sequential %.2fs, speedup %.2fx)@."
    (List.length s.items) s.jobs s.elapsed_s s.sequential_s (speedup s);
  Format.fprintf ppf "search: %a@." Pacor_route.Search_stats.pp s.search;
  if s.degraded_jobs > 0 || s.retried_jobs > 0 then
    Format.fprintf ppf "degradation: %d degraded, %d retried@." s.degraded_jobs
      s.retried_jobs;
  match s.quarantined with
  | [] -> ()
  | q ->
    Format.fprintf ppf "quarantine: %d job(s) permanently failed@."
      (List.length q);
    List.iter
      (fun i ->
         Format.fprintf ppf "  %-20s after %d attempt(s): %s@." i.name i.attempts
           (match i.solution with
            | Error e -> error_to_string e
            | Ok _ -> assert false))
      q
