type job = {
  name : string;
  problem : Pacor.Problem.t;
  config : Pacor.Config.t;
}

let job ?(config = Pacor.Config.default) ~name problem = { name; problem; config }

type item = {
  name : string;
  solution : (Pacor.Solution.t, string) result;
  elapsed_s : float;
}

type summary = {
  items : item list;
  jobs : int;
  elapsed_s : float;
  sequential_s : float;
  search : Pacor_route.Search_stats.snapshot;
}

let speedup s = if s.elapsed_s > 0.0 then s.sequential_s /. s.elapsed_s else 1.0

let route_one (w : Pool.worker) (j : job) =
  let t0 = Unix.gettimeofday () in
  let solution =
    match
      Pacor.Engine.run ~config:j.config ~workspace:(Pool.worker_workspace w)
        j.problem
    with
    | Ok sol -> Ok sol
    | Error (e : Pacor.Engine.error) ->
      Error (Printf.sprintf "%s: %s" e.stage e.message)
  in
  { name = j.name; solution; elapsed_s = Unix.gettimeofday () -. t0 }

let solution_search (sol : Pacor.Solution.t) =
  List.fold_left
    (fun acc (_, snap) -> Pacor_route.Search_stats.add acc snap)
    Pacor_route.Search_stats.zero sol.Pacor.Solution.stage_search

let summarize ~jobs ~elapsed_s items =
  {
    items;
    jobs;
    elapsed_s;
    sequential_s =
      List.fold_left (fun acc (i : item) -> acc +. i.elapsed_s) 0.0 items;
    (* Summing the solutions' own per-stage snapshots (rather than the
       workers' live counters) keeps the aggregate deterministic and
       independent of pool reuse. *)
    search =
      List.fold_left
        (fun acc i ->
           match i.solution with
           | Ok sol -> Pacor_route.Search_stats.add acc (solution_search sol)
           | Error _ -> acc)
        Pacor_route.Search_stats.zero items;
  }

let run_on pool jobs_list =
  let t0 = Unix.gettimeofday () in
  let items = Pool.map_ctx pool route_one jobs_list in
  summarize ~jobs:(Pool.jobs pool) ~elapsed_s:(Unix.gettimeofday () -. t0) items

let run ?(jobs = 1) jobs_list =
  Pool.with_pool ~jobs (fun pool -> run_on pool jobs_list)

let run_problems ?jobs ?config named =
  run ?jobs (List.map (fun (name, problem) -> job ?config ~name problem) named)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
    let chips =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".chip")
      |> List.sort String.compare
    in
    if chips = [] then Error (Printf.sprintf "no *.chip files in %s" dir)
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest ->
          let path = Filename.concat dir f in
          (match Pacor.Problem_io.load ~path with
           | Error e -> Error (Printf.sprintf "%s: %s" path e)
           | Ok p -> go ((Filename.chop_suffix f ".chip", p) :: acc) rest)
      in
      go [] chips

let pp_summary ppf s =
  Format.fprintf ppf "%-22s %10s %10s %11s %8s@." "instance" "matched" "total_len"
    "completion" "time";
  List.iter
    (fun i ->
       match i.solution with
       | Error e -> Format.fprintf ppf "%-22s FAILED: %s@." i.name e
       | Ok sol ->
         let st = Pacor.Solution.stats sol in
         Format.fprintf ppf "%-22s %6d/%-3d %10d %10.0f%% %7.2fs@." i.name
           st.Pacor.Solution.matched_clusters st.Pacor.Solution.clusters
           st.Pacor.Solution.total_length
           (100.0 *. st.Pacor.Solution.completion)
           i.elapsed_s)
    s.items;
  Format.fprintf ppf
    "batch: %d instances on %d domains in %.2fs (sequential %.2fs, speedup %.2fx)@."
    (List.length s.items) s.jobs s.elapsed_s s.sequential_s (speedup s);
  Format.fprintf ppf "search: %a@." Pacor_route.Search_stats.pp s.search
